//! `TmkCtx` — the application thread's view of the DSM.
//!
//! All shared-memory access and synchronization by application code
//! goes through this context:
//!
//! * typed slot reads/writes with a software "page table" fast path
//!   (the cache) and a protocol slow path (the fault driver) — our
//!   substitute for mmap/SIGSEGV access detection (DESIGN.md §3);
//! * distributed locks and barriers (lazy release consistency client
//!   side);
//! * interval bookkeeping at releases.
//!
//! One `TmkCtx` exists per process application thread. The master's
//! context additionally carries the control-message buffer so it can
//! act as the barrier manager while it executes its own share of a
//! parallel region.

use crate::config::{DataPlaneConfig, DsmConfig};
use crate::core::{AccessPlan, LockWaiter, ProcCore};
use crate::msg::Msg;
use crate::page::PageBuf;
use crate::service::{deliver_grant, Ctrl};
use crate::stats::DsmStats;
use crate::types::{Addr, Epoch, PageId, Pid, Seq, Team};
use nowmp_net::{Endpoint, Gpid, NetError, PendingCall};
use nowmp_util::wire::{Encoding, Wire};
use nowmp_util::Clock;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Buffered control-message receiver: lets a thread wait for a specific
/// kind of message while stashing others for later. Waits are visible
/// on the simulation clock (see [`Clock::blocked`]), and queued control
/// messages stay accounted as in-flight until taken off the channel.
pub struct CtrlBuf {
    rx: crossbeam_channel::Receiver<Ctrl>,
    backlog: VecDeque<Ctrl>,
    clock: Clock,
}

impl CtrlBuf {
    /// Wrap a control channel; waits are reported to `clock`.
    pub fn new(rx: crossbeam_channel::Receiver<Ctrl>, clock: Clock) -> Self {
        CtrlBuf {
            rx,
            backlog: VecDeque::new(),
            clock,
        }
    }

    /// Receive the next control message matching `pred`, buffering
    /// non-matching ones. `timeout` is a *real-time* guard against
    /// protocol deadlock.
    pub fn recv_where(
        &mut self,
        timeout: Duration,
        mut pred: impl FnMut(&Ctrl) -> bool,
    ) -> Result<Ctrl, NetError> {
        if let Some(pos) = self.backlog.iter().position(&mut pred) {
            return Ok(self.backlog.remove(pos).expect("position is valid"));
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.clock.blocked(|| self.rx.recv_timeout(remaining)) {
                Ok(c) => {
                    self.clock.msg_received();
                    if pred(&c) {
                        return Ok(c);
                    }
                    self.backlog.push_back(c);
                }
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    return Err(NetError::Timeout(Gpid(0)));
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    return Err(NetError::Disconnected(Gpid(0)));
                }
            }
        }
    }

    /// Non-blocking: drain every already-delivered message matching `pred`.
    pub fn drain_where(&mut self, mut pred: impl FnMut(&Ctrl) -> bool) -> Vec<Ctrl> {
        while let Ok(c) = self.rx.try_recv() {
            self.clock.msg_received();
            self.backlog.push_back(c);
        }
        let mut out = Vec::new();
        let mut keep = VecDeque::with_capacity(self.backlog.len());
        for c in self.backlog.drain(..) {
            if pred(&c) {
                out.push(c);
            } else {
                keep.push_back(c);
            }
        }
        self.backlog = keep;
        out
    }
}

/// A cached page-access grant: buffer plus write permission.
pub struct CacheEnt {
    /// The page payload.
    pub buf: Arc<PageBuf>,
    /// Whether writes may go through this entry.
    pub writable: bool,
}

/// Maximum redirect hops when chasing a page's owner.
const MAX_REDIRECTS: usize = 6;

/// What one in-flight release-phase prefetch request expects back.
enum PrefetchKind {
    /// A `PageReq` for a single page (redirect replies are dropped —
    /// prefetch never chases ownership chains).
    Full,
    /// A `DiffReq` whose diffs were created by this team rank.
    Diffs {
        /// Creator's rank (diff application attributes by pid).
        creator: Pid,
    },
}

/// One release-phase prefetch in flight.
struct Prefetch {
    /// Pages this request covers (one for `Full`, one or more for
    /// `Diffs`).
    pages: Vec<PageId>,
    kind: PrefetchKind,
    call: PendingCall,
}

/// The application thread's DSM context.
pub struct TmkCtx {
    core: Arc<Mutex<ProcCore>>,
    endpoint: Arc<Endpoint>,
    stats: Arc<DsmStats>,
    cache: Vec<Option<CacheEnt>>,
    /// Cached copies of slowly-changing core fields (refreshed at sync
    /// points) so the fast path takes no lock.
    epoch: Epoch,
    team: Team,
    my_pid: Pid,
    slots_per_page: usize,
    page_shift: u32,
    call_timeout: Duration,
    /// Wire encoding for every message we produce ([`Encoding::Flat`]
    /// reproduces the faithful-1999 [`crate::config::Broadcast::Flat`]
    /// payload sizes; see `Msg::to_bytes_compat`).
    wire_enc: Encoding,
    /// Shape of each cluster-wide collective.
    collectives: crate::config::CollectiveConfig,
    throttle: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Shared control buffer: the master's `barrier()` plays manager
    /// through it; worker ranks receive tree-relayed barrier releases
    /// (and, in the system layer, join-reduce aggregates) through the
    /// same buffer. `None` only in single-process test contexts.
    ctrl: Option<Arc<Mutex<CtrlBuf>>>,
    /// Current region parameters (set by the fork dispatcher).
    params: Vec<u8>,
    /// Modeled compute cost of one iteration of the current region at
    /// reference speed (set by the fork dispatcher from the
    /// [`nowmp_net::CostModel`]; zero = compute is free).
    iter_cost: Duration,
    /// Data-plane overlap levers (pipelined faults, release-phase
    /// prefetch, piggybacked hot diffs).
    dataplane: DataPlaneConfig,
    /// In-flight release-phase prefetches. Must be empty at every
    /// synchronization point (see [`Self::drain_prefetch`]).
    inflight: Vec<Prefetch>,
    /// Pages a completed prefetch already applied but no fault has
    /// claimed yet: hits when faulted, waste at the next rotation.
    prefetched_ready: Vec<PageId>,
    /// Prefetched diff replies buffered per page until the page's
    /// *whole* unapplied-notice set has arrived
    /// ([`Self::settle_buffered_diffs`]): diffs from different creators
    /// must be applied in one causally-sorted batch, never in call
    /// completion order.
    diff_buf: Vec<(PageId, Vec<(Pid, Seq, crate::diff::Diff)>)>,
    /// Pages the current window planned via diff prefetch but has not
    /// applied yet: moved to `prefetched_ready` when their diff set
    /// completes, counted wasted at the next drain otherwise.
    diff_planned: Vec<PageId>,
}

impl TmkCtx {
    /// Build a context over a process's shared state.
    pub fn new(
        core: Arc<Mutex<ProcCore>>,
        endpoint: Arc<Endpoint>,
        ctrl: Option<Arc<Mutex<CtrlBuf>>>,
    ) -> Self {
        let (stats, cfg, epoch, team, my_pid): (Arc<DsmStats>, DsmConfig, Epoch, Team, Pid) = {
            let c = core.lock();
            (
                Arc::clone(&c.stats),
                c.cfg.clone(),
                c.epoch(),
                c.team.clone(),
                c.my_pid,
            )
        };
        let spp = cfg.slots_per_page();
        TmkCtx {
            core,
            endpoint,
            stats,
            cache: Vec::new(),
            epoch,
            team,
            my_pid,
            slots_per_page: spp,
            page_shift: spp.trailing_zeros(),
            call_timeout: cfg.call_timeout,
            wire_enc: if cfg.collectives.fork == crate::config::Broadcast::Flat {
                Encoding::Flat
            } else {
                Encoding::Runs
            },
            collectives: cfg.collectives,
            throttle: cfg.throttle.clone(),
            ctrl,
            params: Vec::new(),
            iter_cost: Duration::ZERO,
            dataplane: cfg.dataplane,
            inflight: Vec::new(),
            prefetched_ready: Vec::new(),
            diff_buf: Vec::new(),
            diff_planned: Vec::new(),
        }
    }

    /// Our rank in the current team.
    pub fn pid(&self) -> Pid {
        self.my_pid
    }

    /// Team size.
    pub fn nprocs(&self) -> usize {
        self.team.nprocs()
    }

    /// The current team.
    pub fn team(&self) -> &Team {
        &self.team
    }

    /// Our process instance id.
    pub fn gpid(&self) -> Gpid {
        self.endpoint.gpid()
    }

    /// Opaque parameters of the region being executed.
    pub fn params(&self) -> &[u8] {
        &self.params
    }

    /// Install region parameters (runtime use).
    pub fn set_params(&mut self, params: Vec<u8>) {
        self.params = params;
    }

    /// Install the per-iteration compute cost of the region about to
    /// run (runtime use; the fork dispatcher resolves it from the
    /// [`nowmp_net::CostModel`] by region name).
    pub fn set_iter_cost(&mut self, per_iter: Duration) {
        self.iter_cost = per_iter;
    }

    /// The host this process currently runs on.
    pub fn host(&self) -> nowmp_net::HostId {
        self.endpoint.host()
    }

    /// The simulation's host cost model.
    pub fn cost_model(&self) -> &nowmp_net::CostModel {
        self.endpoint.cost()
    }

    /// Charge `iters` iterations of the current region's modeled
    /// compute cost to the simulation clock, speed-adjusted for this
    /// process's host. The worksharing loops call this at every chunk
    /// boundary — under a virtual clock this is what makes compute
    /// *time-visible*, turning event orderings into quantitative
    /// timelines (ROADMAP: "charge it through
    /// `ClusterShared::clock().sleep(...)` at chunk boundaries").
    /// Free (an early return) when no cost model is installed.
    pub fn charge_compute(&mut self, iters: u64) {
        self.poll_prefetch();
        if self.iter_cost.is_zero() || iters == 0 {
            return;
        }
        let d = self
            .endpoint
            .cost()
            .compute_time(self.iter_cost, iters, self.endpoint.host());
        if !d.is_zero() {
            self.endpoint.clock().sleep(d);
        }
    }

    /// Charge an explicit FLOP count to the simulation clock (for
    /// regions whose per-iteration work varies — e.g. Gauss elimination
    /// steps shrink as the pivot advances — where a fixed per-index
    /// cost would mis-shape the timeline). No-op unless the cost model
    /// has compute charging enabled.
    pub fn charge_flops(&mut self, flops: f64) {
        self.poll_prefetch();
        let cost = self.endpoint.cost();
        if !cost.emulate_compute || flops <= 0.0 {
            return;
        }
        let d = cost.scaled(
            cost.flops_time(flops)
                .div_f64(cost.effective_speed(self.endpoint.host())),
        );
        if !d.is_zero() {
            self.endpoint.clock().sleep(d);
        }
    }

    /// Shared event counters.
    pub fn stats(&self) -> &Arc<DsmStats> {
        &self.stats
    }

    /// Access the core (runtime/SPI use; application code never needs this).
    pub fn core(&self) -> &Arc<Mutex<ProcCore>> {
        &self.core
    }

    /// Look up a published allocation by name.
    pub fn handle(&self, name: &str) -> Option<crate::msg::RegEntry> {
        self.core.lock().registry.get(name).cloned()
    }

    /// Invoke the adaptive layer's throttle hook (migration freeze gate).
    #[inline]
    pub fn throttle(&self) {
        if let Some(t) = &self.throttle {
            t();
        }
    }

    /// Drop all cached page access and refresh team/epoch snapshots.
    /// Must be called after every operation that can invalidate pages
    /// or change the team.
    pub fn sync_reset(&mut self) {
        self.cache.iter_mut().for_each(|e| *e = None);
        let c = self.core.lock();
        self.epoch = c.epoch();
        if self.team != c.team {
            self.team = c.team.clone();
        }
        self.my_pid = c.my_pid;
    }

    // ------------------------------------------------------------------
    // Fault driver
    // ------------------------------------------------------------------

    fn call(&self, dst: Gpid, msg: &Msg) -> Msg {
        let rep = self
            .endpoint
            .call_deadline(dst, msg.to_bytes_compat(self.wire_enc), self.call_timeout)
            .unwrap_or_else(|e| panic!("{}: call to {dst} failed: {e}", self.gpid()));
        Msg::from_wire(&rep).expect("malformed reply")
    }

    /// Ensure `page` is accessible (and writable if `write`), returning
    /// a cached handle. The heart of the software page-fault path.
    pub fn ensure_page(&mut self, page: PageId, write: bool) -> &CacheEnt {
        let idx = page as usize;
        if idx >= self.cache.len() {
            self.cache.resize_with(idx + 1, || None);
        }
        // Fast path: polonius-unfriendly, so re-borrow after the check.
        let hit = matches!(&self.cache[idx], Some(e) if !write || e.writable);
        if !hit {
            self.fault(page, write);
        }
        self.cache[idx].as_ref().expect("fault populated the cache")
    }

    #[cold]
    fn fault(&mut self, page: PageId, write: bool) {
        self.throttle();
        if write {
            // write_faults counted inside plan_access (twin creation).
        } else {
            DsmStats::bump(&self.stats.read_faults);
        }
        // A fault that hits an in-flight prefetch waits on *that
        // page's* requests instead of re-issuing them. Only those: the
        // other prefetches keep overlapping the compute that follows —
        // waiting for all of them here would put the whole window's
        // replies back on the critical path.
        if !self.inflight.is_empty() {
            let mut i = 0;
            while i < self.inflight.len() {
                if self.inflight[i].pages.contains(&page) {
                    let p = self.inflight.swap_remove(i);
                    self.finish_prefetch(p);
                } else {
                    i += 1;
                }
            }
        }
        if let Some(pos) = self.prefetched_ready.iter().position(|&p| p == page) {
            self.prefetched_ready.swap_remove(pos);
            DsmStats::bump(&self.stats.prefetch_hits);
            // A hit resolves to `Ready` below, so `plan_access` won't
            // record it — but it is real demand the next prefetch
            // window must still predict.
            self.core.lock().note_fault(page);
        }
        loop {
            let plan = self.core.lock().plan_access(page, write);
            match plan {
                AccessPlan::Ready { buf, writable } => {
                    self.cache[page as usize] = Some(CacheEnt { buf, writable });
                    return;
                }
                AccessPlan::NeedFull { target } => self.fetch_full(page, target),
                AccessPlan::NeedDiffs { groups } => self.fetch_diffs(page, groups),
            }
        }
    }

    /// Fetch a full page, following owner redirects.
    fn fetch_full(&mut self, page: PageId, mut target: Gpid) {
        for _ in 0..MAX_REDIRECTS {
            assert_ne!(
                target,
                self.gpid(),
                "page {page} redirect loop back to self"
            );
            let rep = self.call(
                target,
                &Msg::PageReq {
                    epoch: self.epoch,
                    page,
                },
            );
            match rep {
                Msg::PageRep {
                    redirect: Some(next),
                    ..
                } => {
                    target = next;
                }
                Msg::PageRep {
                    applied,
                    words,
                    redirect: None,
                } => {
                    self.core.lock().install_page(page, &applied, words, target);
                    return;
                }
                other => panic!("unexpected reply to PageReq: {other:?}"),
            }
        }
        panic!("page {page}: too many ownership redirects");
    }

    /// Fetch and apply diffs from each creator. Under
    /// `dataplane.pipeline` the per-creator requests are
    /// scatter-gathered: every `DiffReq` goes on the wire before any
    /// reply is collected, so a multi-creator fault pays the slowest
    /// creator's latency instead of the sum of all of them. Replies
    /// are gathered in issue order (application sorts causally by
    /// vcsum regardless).
    fn fetch_diffs(&mut self, page: PageId, groups: Vec<(Gpid, Vec<(PageId, Seq)>)>) {
        let mut batch: Vec<(Pid, Seq, crate::diff::Diff)> = Vec::new();
        if self.dataplane.pipeline && groups.len() > 1 {
            let pending: Vec<(Pid, PendingCall)> = groups
                .into_iter()
                .map(|(creator, wants)| {
                    let pid = self
                        .team
                        .pid_of(creator)
                        .unwrap_or_else(|| panic!("diff creator {creator} not in team"));
                    let msg = Msg::DiffReq {
                        epoch: self.epoch,
                        wants,
                    };
                    let call = self
                        .endpoint
                        .call_begin(creator, msg.to_bytes_compat(self.wire_enc))
                        .unwrap_or_else(|e| {
                            panic!("{}: call to {creator} failed: {e}", self.gpid())
                        });
                    (pid, call)
                })
                .collect();
            for (pid, call) in pending {
                let dst = call.dst();
                let rep = call
                    .wait(self.call_timeout)
                    .unwrap_or_else(|e| panic!("{}: call to {dst} failed: {e}", self.gpid()));
                match Msg::from_wire(&rep).expect("malformed reply") {
                    Msg::DiffRep { diffs } => {
                        for (p, s, d) in diffs {
                            debug_assert_eq!(p, page);
                            batch.push((pid, s, d));
                        }
                    }
                    other => panic!("unexpected reply to DiffReq: {other:?}"),
                }
            }
        } else {
            for (creator, wants) in groups {
                let pid = self
                    .team
                    .pid_of(creator)
                    .unwrap_or_else(|| panic!("diff creator {creator} not in team"));
                let rep = self.call(
                    creator,
                    &Msg::DiffReq {
                        epoch: self.epoch,
                        wants,
                    },
                );
                match rep {
                    Msg::DiffRep { diffs } => {
                        for (p, s, d) in diffs {
                            debug_assert_eq!(p, page);
                            batch.push((pid, s, d));
                        }
                    }
                    other => panic!("unexpected reply to DiffReq: {other:?}"),
                }
            }
        }
        self.core.lock().apply_diffs(page, batch);
    }

    // ------------------------------------------------------------------
    // Release-phase prefetch
    // ------------------------------------------------------------------

    /// Issue asynchronous prefetches for last window's faulted pages.
    /// Called immediately after a `Fork`/`BarrierRelease` lands (and
    /// after [`Self::sync_reset`]), so the requests overlap the
    /// region/epoch compute that follows. No-op under the demand data
    /// plane.
    pub fn prefetch_after_release(&mut self) {
        let budget = self.dataplane.prefetch;
        if budget == 0 || self.nprocs() == 1 {
            return;
        }
        debug_assert!(
            self.inflight.is_empty(),
            "prefetches must be drained before a release point"
        );
        debug_assert!(
            self.diff_buf.is_empty() && self.diff_planned.is_empty(),
            "buffered diffs must be settled or flushed before a release point"
        );
        // Pages prefetched last window that no fault ever claimed were
        // wire bytes for nothing: own up to them.
        let stale = std::mem::take(&mut self.prefetched_ready);
        DsmStats::add(&self.stats.prefetch_wasted, stale.len() as u64);
        let plan = {
            let mut c = self.core.lock();
            let window = c.rotate_fault_window();
            c.plan_prefetch(&window, budget)
        };
        if plan.pages == 0 {
            return;
        }
        DsmStats::add(&self.stats.prefetch_issued, plan.pages as u64);
        for (page, target) in plan.fulls {
            let msg = Msg::PageReq {
                epoch: self.epoch,
                page,
            };
            match self
                .endpoint
                .call_begin(target, msg.to_bytes_compat(self.wire_enc))
            {
                Ok(call) => self.inflight.push(Prefetch {
                    pages: vec![page],
                    kind: PrefetchKind::Full,
                    call,
                }),
                Err(_) => DsmStats::bump(&self.stats.prefetch_wasted),
            }
        }
        for (creator, wants) in plan.diffs {
            let Some(pid) = self.team.pid_of(creator) else {
                continue; // left the team; the demand path re-plans
            };
            let mut pages: Vec<PageId> = wants.iter().map(|&(p, _)| p).collect();
            pages.dedup();
            for &p in &pages {
                if !self.diff_planned.contains(&p) {
                    self.diff_planned.push(p);
                }
            }
            let msg = Msg::DiffReq {
                epoch: self.epoch,
                wants,
            };
            // On send failure the pages stay in `diff_planned`: their
            // set can never complete, so the next drain counts them
            // wasted.
            if let Ok(call) = self
                .endpoint
                .call_begin(creator, msg.to_bytes_compat(self.wire_enc))
            {
                self.inflight.push(Prefetch {
                    pages,
                    kind: PrefetchKind::Diffs { creator: pid },
                    call,
                });
            }
        }
    }

    /// Non-blocking: consume any prefetch replies whose modeled
    /// delivery time has passed. Called from compute chunk boundaries
    /// ([`Self::charge_compute`]) so replies are folded in while the
    /// region runs — and so parked replies stop pinning the virtual
    /// clock's in-flight account.
    pub fn poll_prefetch(&mut self) {
        if self.inflight.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].call.ready() {
                let p = self.inflight.swap_remove(i);
                self.finish_prefetch(p);
            } else {
                i += 1;
            }
        }
    }

    /// Block until every in-flight prefetch is applied (or discarded).
    /// Must run before anything that changes the protocol state the
    /// requests were planned against: barriers, lock transfers,
    /// interval closes, joins, GC.
    pub fn drain_prefetch(&mut self) {
        while let Some(p) = self.inflight.pop() {
            self.finish_prefetch(p);
        }
        // Pages whose diff set never completed (a creator call failed,
        // or demand got there first): applying a partial set could
        // clobber causally-newer words, so the buffers are dropped and
        // the demand path refetches the whole set totally ordered.
        DsmStats::add(&self.stats.prefetch_wasted, self.diff_planned.len() as u64);
        self.diff_planned.clear();
        self.diff_buf.clear();
    }

    /// Fold one completed prefetch into the core. Replies that no
    /// longer match the local plan (ownership redirects, pages that
    /// changed state) are dropped as waste — the demand path still
    /// covers them.
    fn finish_prefetch(&mut self, p: Prefetch) {
        let Prefetch { pages, kind, call } = p;
        let from = call.dst();
        let rep = match call.wait(self.call_timeout) {
            Ok(b) => b,
            Err(_) => {
                DsmStats::add(&self.stats.prefetch_wasted, pages.len() as u64);
                return;
            }
        };
        match (
            kind,
            Msg::from_wire(&rep).expect("malformed prefetch reply"),
        ) {
            (
                PrefetchKind::Full,
                Msg::PageRep {
                    redirect: Some(_), ..
                },
            ) => {
                DsmStats::bump(&self.stats.prefetch_wasted);
            }
            (
                PrefetchKind::Full,
                Msg::PageRep {
                    applied,
                    words,
                    redirect: None,
                },
            ) => {
                let page = pages[0];
                let mut c = self.core.lock();
                let still_wanted = c
                    .pages
                    .get(page)
                    .map(|m| m.data.is_none() && m.state == crate::page::PageState::Invalid)
                    .unwrap_or(false);
                if still_wanted {
                    c.install_page(page, &applied, words, from);
                    drop(c);
                    if !self.prefetched_ready.contains(&page) {
                        self.prefetched_ready.push(page);
                    }
                } else {
                    DsmStats::bump(&self.stats.prefetch_wasted);
                }
            }
            (PrefetchKind::Diffs { creator }, Msg::DiffRep { diffs }) => {
                let mut touched: Vec<PageId> = Vec::new();
                for (p, s, d) in diffs {
                    match self.diff_buf.iter_mut().find(|(page, _)| *page == p) {
                        Some((_, batch)) => batch.push((creator, s, d)),
                        None => self.diff_buf.push((p, vec![(creator, s, d)])),
                    }
                    if !touched.contains(&p) {
                        touched.push(p);
                    }
                }
                for page in touched {
                    self.settle_buffered_diffs(page);
                }
            }
            (_, other) => panic!("unexpected prefetch reply: {other:?}"),
        }
    }

    /// Apply a page's buffered prefetch diffs once — and only once —
    /// the page's *entire* unapplied-notice set has arrived. The demand
    /// path gathers every creator's diffs and applies them in one batch
    /// sorted by interval vcsum; replies arriving per creator call must
    /// not be applied in completion order, or a causally-older interval
    /// landing late would clobber a newer writer's words (lost updates
    /// on lock-protected slots shared with barrier-phase writers).
    /// Incomplete sets stay buffered; [`Self::drain_prefetch`] drops
    /// them as waste and the demand path refetches totally ordered.
    fn settle_buffered_diffs(&mut self, page: PageId) {
        let Some(idx) = self.diff_buf.iter().position(|(p, _)| *p == page) else {
            return;
        };
        let mut c = self.core.lock();
        let complete = match c.pages.get(page) {
            Some(meta) if meta.state == crate::page::PageState::Invalid && meta.data.is_some() => {
                let unapplied = meta.unapplied();
                !unapplied.is_empty()
                    && unapplied.iter().all(|wn| {
                        self.diff_buf[idx]
                            .1
                            .iter()
                            .any(|&(pid, seq, _)| pid == wn.pid && seq == wn.seq)
                    })
            }
            _ => false,
        };
        if !complete {
            return;
        }
        let (_, batch) = self.diff_buf.swap_remove(idx);
        c.apply_diffs(page, batch);
        drop(c);
        if let Some(pos) = self.diff_planned.iter().position(|&p| p == page) {
            self.diff_planned.swap_remove(pos);
        }
        if !self.prefetched_ready.contains(&page) {
            self.prefetched_ready.push(page);
        }
    }

    // ------------------------------------------------------------------
    // Typed access
    // ------------------------------------------------------------------

    #[inline]
    fn locate(&self, addr: Addr) -> (PageId, usize) {
        (
            (addr >> self.page_shift) as PageId,
            (addr & (self.slots_per_page as u64 - 1)) as usize,
        )
    }

    /// Read the 8-byte slot at `addr` as `u64`.
    #[inline]
    pub fn read_u64(&mut self, addr: Addr) -> u64 {
        let (page, off) = self.locate(addr);
        self.ensure_page(page, false).buf.load(off)
    }

    /// Write the 8-byte slot at `addr`.
    #[inline]
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        let (page, off) = self.locate(addr);
        self.ensure_page(page, true).buf.store(off, v);
    }

    /// Read the slot at `addr` as `f64`.
    #[inline]
    pub fn read_f64(&mut self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write the slot at `addr` as `f64`.
    #[inline]
    pub fn write_f64(&mut self, addr: Addr, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Read the slot at `addr` as `i64`.
    #[inline]
    pub fn read_i64(&mut self, addr: Addr) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Write the slot at `addr` as `i64`.
    #[inline]
    pub fn write_i64(&mut self, addr: Addr, v: i64) {
        self.write_u64(addr, v as u64);
    }

    /// Bulk-read `dst.len()` slots starting at `addr` (page-chunked; one
    /// fault check per page instead of per element).
    pub fn read_words(&mut self, addr: Addr, dst: &mut [u64]) {
        let mut a = addr;
        let mut i = 0;
        while i < dst.len() {
            let (page, off) = self.locate(a);
            let n = (self.slots_per_page - off).min(dst.len() - i);
            let ent = self.ensure_page(page, false);
            ent.buf.read_range(off, &mut dst[i..i + n]);
            i += n;
            a += n as u64;
        }
    }

    /// Bulk-write `src` starting at `addr`.
    pub fn write_words(&mut self, addr: Addr, src: &[u64]) {
        let mut a = addr;
        let mut i = 0;
        while i < src.len() {
            let (page, off) = self.locate(a);
            let n = (self.slots_per_page - off).min(src.len() - i);
            let ent = self.ensure_page(page, true);
            ent.buf.write_range(off, &src[i..i + n]);
            i += n;
            a += n as u64;
        }
    }

    /// Bulk-read as `f64`.
    pub fn read_f64s(&mut self, addr: Addr, dst: &mut [f64]) {
        let mut a = addr;
        let mut i = 0;
        while i < dst.len() {
            let (page, off) = self.locate(a);
            let n = (self.slots_per_page - off).min(dst.len() - i);
            let ent = self.ensure_page(page, false);
            for k in 0..n {
                dst[i + k] = f64::from_bits(ent.buf.load(off + k));
            }
            i += n;
            a += n as u64;
        }
    }

    /// Bulk-write `f64`s.
    pub fn write_f64s(&mut self, addr: Addr, src: &[f64]) {
        let mut a = addr;
        let mut i = 0;
        while i < src.len() {
            let (page, off) = self.locate(a);
            let n = (self.slots_per_page - off).min(src.len() - i);
            let ent = self.ensure_page(page, true);
            for k in 0..n {
                ent.buf.store(off + k, src[i + k].to_bits());
            }
            i += n;
            a += n as u64;
        }
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    /// Acquire distributed lock `lock` (blocking). Lazy release
    /// consistency: the grant tells us the previous holder; we fetch the
    /// interval records we lack from it and invalidate accordingly.
    pub fn lock(&mut self, lock: u32) {
        self.throttle();
        // Lock transfers apply remote interval records; the prefetch
        // plan was made against the pre-acquire unapplied sets.
        self.drain_prefetch();
        let mgr_pid = self.team.lock_manager(lock);
        let mgr_gpid = self.team.gpid(mgr_pid);
        let prev: Option<Gpid> = if mgr_gpid == self.gpid() {
            // We manage this lock: local acquire (may still block while
            // a remote process holds it).
            let clock = self.endpoint.clock();
            let (tx, rx) = crossbeam_channel::bounded(1);
            let grant = self
                .core
                .lock()
                .lock_acquire(lock, self.gpid(), LockWaiter::Local(tx));
            deliver_grant(grant, clock);
            let prev = clock
                .blocked(|| rx.recv_timeout(self.call_timeout))
                .expect("lock grant lost");
            clock.msg_received();
            prev
        } else {
            match self.call(
                mgr_gpid,
                &Msg::LockReq {
                    epoch: self.epoch,
                    lock,
                },
            ) {
                Msg::LockRep { prev } => prev,
                other => panic!("unexpected reply to LockReq: {other:?}"),
            }
        };
        if let Some(prev) = prev {
            if prev != self.gpid() {
                let vc = self.core.lock().vc.clone();
                match self.call(
                    prev,
                    &Msg::RecordsReq {
                        epoch: self.epoch,
                        vc,
                    },
                ) {
                    Msg::RecordsRep { records } => {
                        self.core.lock().apply_records(&records);
                    }
                    other => panic!("unexpected reply to RecordsReq: {other:?}"),
                }
            }
        }
        DsmStats::bump(&self.stats.lock_acquires);
        self.sync_reset();
    }

    /// Release distributed lock `lock`: close our interval (making our
    /// writes forwardable) and notify the manager.
    pub fn unlock(&mut self, lock: u32) {
        self.drain_prefetch();
        {
            let mut c = self.core.lock();
            c.close_interval();
        }
        // Releasing downgraded Write pages; cached writable entries are stale.
        self.sync_reset();
        let mgr_pid = self.team.lock_manager(lock);
        let mgr_gpid = self.team.gpid(mgr_pid);
        if mgr_gpid == self.gpid() {
            let grant = self.core.lock().lock_release(lock);
            deliver_grant(grant, self.endpoint.clock());
        } else {
            self.endpoint
                .send(
                    mgr_gpid,
                    Msg::LockRelease {
                        epoch: self.epoch,
                        lock,
                    }
                    .to_bytes(),
                )
                .expect("lock manager vanished");
        }
    }

    /// Run `f` under lock `lock` (OpenMP `critical`).
    pub fn critical<R>(&mut self, lock: u32, f: impl FnOnce(&mut TmkCtx) -> R) -> R {
        self.lock(lock);
        let r = f(self);
        self.unlock(lock);
        r
    }

    /// In-region barrier. The master (pid 0) is the manager; slaves send
    /// their new interval records and receive everyone else's. The
    /// release direction follows `collectives.barrier_release`: flat
    /// replies per arrival, or one receiver-independent
    /// `BarrierRelease` relayed down the binomial tree.
    pub fn barrier(&mut self) {
        self.throttle();
        self.drain_prefetch();
        DsmStats::bump(&self.stats.barrier_arrivals);
        if self.nprocs() == 1 {
            self.core.lock().close_interval();
            self.sync_reset();
            return;
        }
        if self.my_pid == 0 {
            let ctrl = Arc::clone(
                self.ctrl
                    .as_ref()
                    .expect("the barrier manager has a ctrl buffer"),
            );
            self.barrier_master(&ctrl);
        } else {
            self.barrier_slave();
        }
        self.sync_reset();
        // Overlap the next epoch's faults with its compute: refetch
        // what we faulted on last epoch, asynchronously.
        self.prefetch_after_release();
    }

    fn barrier_slave(&mut self) {
        let (vc, records, pid) = {
            let mut c = self.core.lock();
            c.close_interval();
            (c.vc.clone(), c.drain_unsent(), c.my_pid)
        };
        let master = self.team.master();
        let arrive = Msg::BarrierArrive {
            epoch: self.epoch,
            pid,
            vc,
            records,
        };
        if self.collectives.barrier_release != crate::config::Broadcast::Tree {
            match self.call(master, &arrive) {
                Msg::BarrierRep { vc, records } => {
                    let mut c = self.core.lock();
                    c.apply_records(&records);
                    c.vc.merge(&vc);
                }
                other => panic!("unexpected reply to BarrierArrive: {other:?}"),
            }
            return;
        }
        // Tree release: the arrival is one-way; the release reaches us
        // relayed down the binomial tree through our parent.
        self.endpoint
            .send(master, arrive.to_bytes_compat(self.wire_enc))
            .unwrap_or_else(|e| panic!("{}: barrier arrival failed: {e}", self.gpid()));
        let ctrl = Arc::clone(self.ctrl.as_ref().expect("worker has a ctrl buffer"));
        let c = ctrl
            .lock()
            .recv_where(self.call_timeout, |c| {
                matches!(&c.msg, Msg::BarrierRelease { .. })
            })
            .expect("barrier release lost");
        // Relay the verbatim payload to our subtree *before* applying:
        // the subtree's release latency is the critical path.
        let n = self.team.nprocs();
        if !crate::tree::children(pid as usize, n).is_empty() {
            let d = self.endpoint.cost().relay_time();
            if !d.is_zero() {
                self.endpoint.clock().sleep(d);
            }
            let sent = crate::system::relay_tree_send(&self.endpoint, &self.team, pid, &c.raw);
            DsmStats::add(&self.stats.release_relays, sent as u64);
        }
        match c.msg {
            Msg::BarrierRelease {
                vc,
                records,
                piggyback,
            } => {
                let mut core = self.core.lock();
                core.apply_records(&records);
                core.vc.merge(&vc);
                // Hot diffs ride the release; whatever they fully cover
                // never needs a demand fetch this epoch. Master's own
                // diffs only, so attribution is pid 0.
                core.apply_piggyback(0, &piggyback);
            }
            _ => unreachable!(),
        }
    }

    fn barrier_master(&mut self, ctrl: &Arc<Mutex<CtrlBuf>>) {
        let n = self.nprocs();
        let epoch = self.epoch;
        // Close our interval; our records are in the store.
        {
            let mut c = self.core.lock();
            c.close_interval();
            c.drain_unsent(); // master's records distribute via the release below
        }
        // Collect n-1 arrivals.
        let mut arrivals: Vec<(Ctrl, crate::types::Vc)> = Vec::with_capacity(n - 1);
        for _ in 0..n - 1 {
            let c = ctrl
                .lock()
                .recv_where(
                    self.call_timeout,
                    |c| matches!(&c.msg, Msg::BarrierArrive { epoch: e, .. } if *e == epoch),
                )
                .expect("barrier arrival lost");
            let (vc, records) = match &c.msg {
                Msg::BarrierArrive { vc, records, .. } => (vc.clone(), records.clone()),
                _ => unreachable!(),
            };
            self.core.lock().apply_records(&records);
            self.core.lock().vc.merge(&vc);
            arrivals.push((c, vc));
        }
        if self.collectives.barrier_release == crate::config::Broadcast::Tree {
            // Receiver-independent release: everything newer than the
            // pointwise-min arrival clock covers what every slave lacks
            // (over-delivery is fine — record application dedups), so
            // one payload can be relayed verbatim down the tree.
            let mut min_vc = arrivals[0].1.clone();
            for (_, vc) in arrivals.iter().skip(1) {
                for i in 0..min_vc.len() {
                    min_vc.set(i as Pid, min_vc.get(i as Pid).min(vc.get(i as Pid)));
                }
            }
            let (merged_vc, records, piggyback) = {
                let c = self.core.lock();
                let piggyback = if self.dataplane.piggybacks() {
                    c.piggyback_diffs(self.dataplane.piggyback_budget)
                } else {
                    Vec::new()
                };
                (c.vc.clone(), c.records.newer_than(&min_vc), piggyback)
            };
            let pb_bytes: usize = piggyback.iter().map(|(_, _, d)| 8 + d.wire_bytes()).sum();
            DsmStats::add(&self.stats.piggyback_bytes, pb_bytes as u64);
            let bytes = Msg::BarrierRelease {
                vc: merged_vc,
                records,
                piggyback,
            }
            .to_bytes_compat(self.wire_enc);
            crate::system::relay_tree_send(&self.endpoint, &self.team, 0, &bytes);
            return;
        }
        // Flat release: send each arrival the records it lacks and the
        // merged clock.
        let (merged_vc, replies): (crate::types::Vc, Vec<(Ctrl, Vec<crate::records::Record>)>) = {
            let c = self.core.lock();
            let merged = c.vc.clone();
            let replies = arrivals
                .into_iter()
                .map(|(ctrl_msg, vc)| {
                    let recs = c.records.newer_than(&vc);
                    (ctrl_msg, recs)
                })
                .collect();
            (merged, replies)
        };
        for (ctrl_msg, records) in replies {
            ctrl_msg.replier.expect("BarrierArrive is a request").reply(
                Msg::BarrierRep {
                    vc: merged_vc.clone(),
                    records,
                }
                .to_bytes_compat(self.wire_enc),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DsmStats as Stats;
    use nowmp_net::{HostId, NetModel, Network};

    fn make_ctx() -> TmkCtx {
        let net = Network::new(1, 1, NetModel::disabled());
        let ep = Arc::new(net.register(HostId(0)));
        let gpid = ep.gpid();
        let core = Arc::new(Mutex::new(ProcCore::new(
            DsmConfig {
                page_size: 64,
                ..DsmConfig::test_small()
            },
            gpid,
            Stats::new_shared(),
            gpid,
        )));
        TmkCtx::new(core, ep, None)
    }

    #[test]
    fn single_proc_read_write() {
        let mut ctx = make_ctx();
        ctx.write_f64(3, 2.5);
        assert_eq!(ctx.read_f64(3), 2.5);
        ctx.write_u64(100, 42); // different page (8 slots per page)
        assert_eq!(ctx.read_u64(100), 42);
        assert_eq!(ctx.read_u64(101), 0, "untouched slots read zero");
    }

    #[test]
    fn bulk_ops_cross_pages() {
        let mut ctx = make_ctx();
        let src: Vec<u64> = (0..50).collect();
        ctx.write_words(3, &src);
        let mut dst = vec![0u64; 50];
        ctx.read_words(3, &mut dst);
        assert_eq!(dst, src);

        let fsrc: Vec<f64> = (0..30).map(|i| i as f64 * 0.5).collect();
        ctx.write_f64s(100, &fsrc);
        let mut fdst = vec![0f64; 30];
        ctx.read_f64s(100, &mut fdst);
        assert_eq!(fdst, fsrc);
    }

    #[test]
    fn cache_hit_avoids_slow_path() {
        let mut ctx = make_ctx();
        ctx.write_u64(0, 1);
        let faults_before = ctx.stats().snapshot();
        for i in 0..8 {
            ctx.write_u64(i, i);
            let _ = ctx.read_u64(i);
        }
        let faults_after = ctx.stats().snapshot();
        assert_eq!(
            faults_after.write_faults, faults_before.write_faults,
            "same-page accesses must hit the cache"
        );
    }

    #[test]
    fn sync_reset_forces_revalidation() {
        let mut ctx = make_ctx();
        ctx.write_u64(0, 7);
        ctx.sync_reset();
        // Still readable (state preserved in core), value intact.
        assert_eq!(ctx.read_u64(0), 7);
    }

    #[test]
    fn single_proc_barrier_is_local() {
        let mut ctx = make_ctx();
        ctx.write_u64(0, 7);
        ctx.barrier();
        assert_eq!(ctx.read_u64(0), 7);
        assert_eq!(ctx.stats().snapshot().barrier_arrivals, 1);
    }

    #[test]
    fn self_managed_lock_roundtrip() {
        let mut ctx = make_ctx();
        ctx.lock(0);
        ctx.write_u64(0, 5);
        ctx.unlock(0);
        ctx.lock(0);
        assert_eq!(ctx.read_u64(0), 5);
        ctx.unlock(0);
        assert_eq!(ctx.stats().snapshot().lock_acquires, 2);
    }

    #[test]
    fn critical_section_helper() {
        let mut ctx = make_ctx();
        let v = ctx.critical(3, |c| {
            c.write_u64(9, 11);
            c.read_u64(9)
        });
        assert_eq!(v, 11);
    }

    #[test]
    fn params_roundtrip() {
        let mut ctx = make_ctx();
        ctx.set_params(vec![1, 2, 3]);
        assert_eq!(ctx.params(), &[1, 2, 3]);
    }

    // --- fetch_full ownership-redirect chasing ---

    /// Spawn a fake page server answering every `PageReq` with `rep`.
    fn page_server(ep: nowmp_net::Endpoint, rep: Msg) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            while let Ok(inc) = ep.recv() {
                match Msg::from_wire(&inc.payload).expect("malformed request") {
                    Msg::PageReq { .. } => inc
                        .replier
                        .expect("PageReq is a request")
                        .reply(rep.to_bytes()),
                    other => panic!("unexpected message at fake page server: {other:?}"),
                }
            }
        })
    }

    /// A ctx on host 0 of `net` whose page 0 carries a (possibly stale)
    /// owner hint pointing at `owner`.
    fn make_ctx_with_owner_hint(net: &Network, owner: nowmp_net::Gpid) -> TmkCtx {
        let ep = Arc::new(net.register(HostId(0)));
        let gpid = ep.gpid();
        let core = Arc::new(Mutex::new(ProcCore::new(
            DsmConfig {
                page_size: 64,
                ..DsmConfig::test_small()
            },
            gpid,
            Stats::new_shared(),
            gpid,
        )));
        {
            let mut pc = core.lock();
            pc.ensure_pages(1);
            pc.pages.guard(0).owner = owner;
            pc.pages.guard(0).shared = true;
        }
        TmkCtx::new(core, ep, None)
    }

    #[test]
    fn fetch_full_follows_multi_hop_redirects() {
        let net = Network::new(3, 1, NetModel::disabled());
        let b = net.register(HostId(1));
        let c = net.register(HostId(2));
        let (bg, cg) = (b.gpid(), c.gpid());
        // b's hint is stale — it points onward to c; c has the page.
        page_server(
            b,
            Msg::PageRep {
                applied: vec![],
                words: vec![],
                redirect: Some(cg),
            },
        );
        page_server(
            c,
            Msg::PageRep {
                applied: vec![],
                words: vec![42; 8],
                redirect: None,
            },
        );
        let mut ctx = make_ctx_with_owner_hint(&net, bg);
        assert_eq!(
            ctx.read_u64(0),
            42,
            "the value arrives through the redirect chain"
        );
        let owner = ctx.core().lock().pages.guard(0).owner;
        assert_eq!(owner, cg, "install records the actual server as owner");
    }

    #[test]
    #[should_panic(expected = "too many ownership redirects")]
    fn fetch_full_redirect_cycle_panics() {
        // b and c each claim the other owns the page: the chase must
        // stop loudly at MAX_REDIRECTS instead of ping-ponging forever.
        let net = Network::new(3, 1, NetModel::disabled());
        let b = net.register(HostId(1));
        let c = net.register(HostId(2));
        let (bg, cg) = (b.gpid(), c.gpid());
        page_server(
            b,
            Msg::PageRep {
                applied: vec![],
                words: vec![],
                redirect: Some(cg),
            },
        );
        page_server(
            c,
            Msg::PageRep {
                applied: vec![],
                words: vec![],
                redirect: Some(bg),
            },
        );
        let mut ctx = make_ctx_with_owner_hint(&net, bg);
        let _ = ctx.read_u64(0);
    }
}
