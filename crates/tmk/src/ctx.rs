//! `TmkCtx` — the application thread's view of the DSM.
//!
//! All shared-memory access and synchronization by application code
//! goes through this context:
//!
//! * typed slot reads/writes with a software "page table" fast path
//!   (the cache) and a protocol slow path (the fault driver) — our
//!   substitute for mmap/SIGSEGV access detection (DESIGN.md §3);
//! * distributed locks and barriers (lazy release consistency client
//!   side);
//! * interval bookkeeping at releases.
//!
//! One `TmkCtx` exists per process application thread. The master's
//! context additionally carries the control-message buffer so it can
//! act as the barrier manager while it executes its own share of a
//! parallel region.

use crate::config::DsmConfig;
use crate::core::{AccessPlan, LockWaiter, ProcCore};
use crate::msg::Msg;
use crate::page::PageBuf;
use crate::service::{deliver_grant, Ctrl};
use crate::stats::DsmStats;
use crate::types::{Addr, Epoch, PageId, Pid, Seq, Team};
use nowmp_net::{Endpoint, Gpid, NetError};
use nowmp_util::wire::{Encoding, Wire};
use nowmp_util::Clock;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Buffered control-message receiver: lets a thread wait for a specific
/// kind of message while stashing others for later. Waits are visible
/// on the simulation clock (see [`Clock::blocked`]), and queued control
/// messages stay accounted as in-flight until taken off the channel.
pub struct CtrlBuf {
    rx: crossbeam_channel::Receiver<Ctrl>,
    backlog: VecDeque<Ctrl>,
    clock: Clock,
}

impl CtrlBuf {
    /// Wrap a control channel; waits are reported to `clock`.
    pub fn new(rx: crossbeam_channel::Receiver<Ctrl>, clock: Clock) -> Self {
        CtrlBuf {
            rx,
            backlog: VecDeque::new(),
            clock,
        }
    }

    /// Receive the next control message matching `pred`, buffering
    /// non-matching ones. `timeout` is a *real-time* guard against
    /// protocol deadlock.
    pub fn recv_where(
        &mut self,
        timeout: Duration,
        mut pred: impl FnMut(&Ctrl) -> bool,
    ) -> Result<Ctrl, NetError> {
        if let Some(pos) = self.backlog.iter().position(&mut pred) {
            return Ok(self.backlog.remove(pos).expect("position is valid"));
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.clock.blocked(|| self.rx.recv_timeout(remaining)) {
                Ok(c) => {
                    self.clock.msg_received();
                    if pred(&c) {
                        return Ok(c);
                    }
                    self.backlog.push_back(c);
                }
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    return Err(NetError::Timeout(Gpid(0)));
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    return Err(NetError::Disconnected(Gpid(0)));
                }
            }
        }
    }

    /// Non-blocking: drain every already-delivered message matching `pred`.
    pub fn drain_where(&mut self, mut pred: impl FnMut(&Ctrl) -> bool) -> Vec<Ctrl> {
        while let Ok(c) = self.rx.try_recv() {
            self.clock.msg_received();
            self.backlog.push_back(c);
        }
        let mut out = Vec::new();
        let mut keep = VecDeque::with_capacity(self.backlog.len());
        for c in self.backlog.drain(..) {
            if pred(&c) {
                out.push(c);
            } else {
                keep.push_back(c);
            }
        }
        self.backlog = keep;
        out
    }
}

/// A cached page-access grant: buffer plus write permission.
pub struct CacheEnt {
    /// The page payload.
    pub buf: Arc<PageBuf>,
    /// Whether writes may go through this entry.
    pub writable: bool,
}

/// Maximum redirect hops when chasing a page's owner.
const MAX_REDIRECTS: usize = 6;

/// The application thread's DSM context.
pub struct TmkCtx {
    core: Arc<Mutex<ProcCore>>,
    endpoint: Arc<Endpoint>,
    stats: Arc<DsmStats>,
    cache: Vec<Option<CacheEnt>>,
    /// Cached copies of slowly-changing core fields (refreshed at sync
    /// points) so the fast path takes no lock.
    epoch: Epoch,
    team: Team,
    my_pid: Pid,
    slots_per_page: usize,
    page_shift: u32,
    call_timeout: Duration,
    /// Wire encoding for every message we produce ([`Encoding::Flat`]
    /// reproduces the faithful-1999 [`crate::config::Broadcast::Flat`]
    /// payload sizes; see `Msg::to_bytes_compat`).
    wire_enc: Encoding,
    /// Shape of each cluster-wide collective.
    collectives: crate::config::CollectiveConfig,
    throttle: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Shared control buffer: the master's `barrier()` plays manager
    /// through it; worker ranks receive tree-relayed barrier releases
    /// (and, in the system layer, join-reduce aggregates) through the
    /// same buffer. `None` only in single-process test contexts.
    ctrl: Option<Arc<Mutex<CtrlBuf>>>,
    /// Current region parameters (set by the fork dispatcher).
    params: Vec<u8>,
    /// Modeled compute cost of one iteration of the current region at
    /// reference speed (set by the fork dispatcher from the
    /// [`nowmp_net::CostModel`]; zero = compute is free).
    iter_cost: Duration,
}

impl TmkCtx {
    /// Build a context over a process's shared state.
    pub fn new(
        core: Arc<Mutex<ProcCore>>,
        endpoint: Arc<Endpoint>,
        ctrl: Option<Arc<Mutex<CtrlBuf>>>,
    ) -> Self {
        let (stats, cfg, epoch, team, my_pid): (Arc<DsmStats>, DsmConfig, Epoch, Team, Pid) = {
            let c = core.lock();
            (
                Arc::clone(&c.stats),
                c.cfg.clone(),
                c.epoch(),
                c.team.clone(),
                c.my_pid,
            )
        };
        let spp = cfg.slots_per_page();
        TmkCtx {
            core,
            endpoint,
            stats,
            cache: Vec::new(),
            epoch,
            team,
            my_pid,
            slots_per_page: spp,
            page_shift: spp.trailing_zeros(),
            call_timeout: cfg.call_timeout,
            wire_enc: if cfg.collectives.fork == crate::config::Broadcast::Flat {
                Encoding::Flat
            } else {
                Encoding::Runs
            },
            collectives: cfg.collectives,
            throttle: cfg.throttle.clone(),
            ctrl,
            params: Vec::new(),
            iter_cost: Duration::ZERO,
        }
    }

    /// Our rank in the current team.
    pub fn pid(&self) -> Pid {
        self.my_pid
    }

    /// Team size.
    pub fn nprocs(&self) -> usize {
        self.team.nprocs()
    }

    /// The current team.
    pub fn team(&self) -> &Team {
        &self.team
    }

    /// Our process instance id.
    pub fn gpid(&self) -> Gpid {
        self.endpoint.gpid()
    }

    /// Opaque parameters of the region being executed.
    pub fn params(&self) -> &[u8] {
        &self.params
    }

    /// Install region parameters (runtime use).
    pub fn set_params(&mut self, params: Vec<u8>) {
        self.params = params;
    }

    /// Install the per-iteration compute cost of the region about to
    /// run (runtime use; the fork dispatcher resolves it from the
    /// [`nowmp_net::CostModel`] by region name).
    pub fn set_iter_cost(&mut self, per_iter: Duration) {
        self.iter_cost = per_iter;
    }

    /// The host this process currently runs on.
    pub fn host(&self) -> nowmp_net::HostId {
        self.endpoint.host()
    }

    /// The simulation's host cost model.
    pub fn cost_model(&self) -> &nowmp_net::CostModel {
        self.endpoint.cost()
    }

    /// Charge `iters` iterations of the current region's modeled
    /// compute cost to the simulation clock, speed-adjusted for this
    /// process's host. The worksharing loops call this at every chunk
    /// boundary — under a virtual clock this is what makes compute
    /// *time-visible*, turning event orderings into quantitative
    /// timelines (ROADMAP: "charge it through
    /// `ClusterShared::clock().sleep(...)` at chunk boundaries").
    /// Free (an early return) when no cost model is installed.
    pub fn charge_compute(&mut self, iters: u64) {
        if self.iter_cost.is_zero() || iters == 0 {
            return;
        }
        let d = self
            .endpoint
            .cost()
            .compute_time(self.iter_cost, iters, self.endpoint.host());
        if !d.is_zero() {
            self.endpoint.clock().sleep(d);
        }
    }

    /// Charge an explicit FLOP count to the simulation clock (for
    /// regions whose per-iteration work varies — e.g. Gauss elimination
    /// steps shrink as the pivot advances — where a fixed per-index
    /// cost would mis-shape the timeline). No-op unless the cost model
    /// has compute charging enabled.
    pub fn charge_flops(&mut self, flops: f64) {
        let cost = self.endpoint.cost();
        if !cost.emulate_compute || flops <= 0.0 {
            return;
        }
        let d = cost.scaled(
            cost.flops_time(flops)
                .div_f64(cost.effective_speed(self.endpoint.host())),
        );
        if !d.is_zero() {
            self.endpoint.clock().sleep(d);
        }
    }

    /// Shared event counters.
    pub fn stats(&self) -> &Arc<DsmStats> {
        &self.stats
    }

    /// Access the core (runtime/SPI use; application code never needs this).
    pub fn core(&self) -> &Arc<Mutex<ProcCore>> {
        &self.core
    }

    /// Look up a published allocation by name.
    pub fn handle(&self, name: &str) -> Option<crate::msg::RegEntry> {
        self.core.lock().registry.get(name).cloned()
    }

    /// Invoke the adaptive layer's throttle hook (migration freeze gate).
    #[inline]
    pub fn throttle(&self) {
        if let Some(t) = &self.throttle {
            t();
        }
    }

    /// Drop all cached page access and refresh team/epoch snapshots.
    /// Must be called after every operation that can invalidate pages
    /// or change the team.
    pub fn sync_reset(&mut self) {
        self.cache.iter_mut().for_each(|e| *e = None);
        let c = self.core.lock();
        self.epoch = c.epoch();
        if self.team != c.team {
            self.team = c.team.clone();
        }
        self.my_pid = c.my_pid;
    }

    // ------------------------------------------------------------------
    // Fault driver
    // ------------------------------------------------------------------

    fn call(&self, dst: Gpid, msg: &Msg) -> Msg {
        let rep = self
            .endpoint
            .call_deadline(dst, msg.to_bytes_compat(self.wire_enc), self.call_timeout)
            .unwrap_or_else(|e| panic!("{}: call to {dst} failed: {e}", self.gpid()));
        Msg::from_wire(&rep).expect("malformed reply")
    }

    /// Ensure `page` is accessible (and writable if `write`), returning
    /// a cached handle. The heart of the software page-fault path.
    pub fn ensure_page(&mut self, page: PageId, write: bool) -> &CacheEnt {
        let idx = page as usize;
        if idx >= self.cache.len() {
            self.cache.resize_with(idx + 1, || None);
        }
        // Fast path: polonius-unfriendly, so re-borrow after the check.
        let hit = matches!(&self.cache[idx], Some(e) if !write || e.writable);
        if !hit {
            self.fault(page, write);
        }
        self.cache[idx].as_ref().expect("fault populated the cache")
    }

    #[cold]
    fn fault(&mut self, page: PageId, write: bool) {
        self.throttle();
        if write {
            // write_faults counted inside plan_access (twin creation).
        } else {
            DsmStats::bump(&self.stats.read_faults);
        }
        loop {
            let plan = self.core.lock().plan_access(page, write);
            match plan {
                AccessPlan::Ready { buf, writable } => {
                    self.cache[page as usize] = Some(CacheEnt { buf, writable });
                    return;
                }
                AccessPlan::NeedFull { target } => self.fetch_full(page, target),
                AccessPlan::NeedDiffs { groups } => self.fetch_diffs(page, groups),
            }
        }
    }

    /// Fetch a full page, following owner redirects.
    fn fetch_full(&mut self, page: PageId, mut target: Gpid) {
        for _ in 0..MAX_REDIRECTS {
            assert_ne!(
                target,
                self.gpid(),
                "page {page} redirect loop back to self"
            );
            let rep = self.call(
                target,
                &Msg::PageReq {
                    epoch: self.epoch,
                    page,
                },
            );
            match rep {
                Msg::PageRep {
                    redirect: Some(next),
                    ..
                } => {
                    target = next;
                }
                Msg::PageRep {
                    applied,
                    words,
                    redirect: None,
                } => {
                    self.core.lock().install_page(page, &applied, words, target);
                    return;
                }
                other => panic!("unexpected reply to PageReq: {other:?}"),
            }
        }
        panic!("page {page}: too many ownership redirects");
    }

    /// Fetch and apply diffs from each creator.
    fn fetch_diffs(&mut self, page: PageId, groups: Vec<(Gpid, Vec<(PageId, Seq)>)>) {
        let mut batch: Vec<(Pid, Seq, crate::diff::Diff)> = Vec::new();
        for (creator, wants) in groups {
            let pid = self
                .team
                .pid_of(creator)
                .unwrap_or_else(|| panic!("diff creator {creator} not in team"));
            let rep = self.call(
                creator,
                &Msg::DiffReq {
                    epoch: self.epoch,
                    wants,
                },
            );
            match rep {
                Msg::DiffRep { diffs } => {
                    for (p, s, d) in diffs {
                        debug_assert_eq!(p, page);
                        batch.push((pid, s, d));
                    }
                }
                other => panic!("unexpected reply to DiffReq: {other:?}"),
            }
        }
        self.core.lock().apply_diffs(page, batch);
    }

    // ------------------------------------------------------------------
    // Typed access
    // ------------------------------------------------------------------

    #[inline]
    fn locate(&self, addr: Addr) -> (PageId, usize) {
        (
            (addr >> self.page_shift) as PageId,
            (addr & (self.slots_per_page as u64 - 1)) as usize,
        )
    }

    /// Read the 8-byte slot at `addr` as `u64`.
    #[inline]
    pub fn read_u64(&mut self, addr: Addr) -> u64 {
        let (page, off) = self.locate(addr);
        self.ensure_page(page, false).buf.load(off)
    }

    /// Write the 8-byte slot at `addr`.
    #[inline]
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        let (page, off) = self.locate(addr);
        self.ensure_page(page, true).buf.store(off, v);
    }

    /// Read the slot at `addr` as `f64`.
    #[inline]
    pub fn read_f64(&mut self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write the slot at `addr` as `f64`.
    #[inline]
    pub fn write_f64(&mut self, addr: Addr, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Read the slot at `addr` as `i64`.
    #[inline]
    pub fn read_i64(&mut self, addr: Addr) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Write the slot at `addr` as `i64`.
    #[inline]
    pub fn write_i64(&mut self, addr: Addr, v: i64) {
        self.write_u64(addr, v as u64);
    }

    /// Bulk-read `dst.len()` slots starting at `addr` (page-chunked; one
    /// fault check per page instead of per element).
    pub fn read_words(&mut self, addr: Addr, dst: &mut [u64]) {
        let mut a = addr;
        let mut i = 0;
        while i < dst.len() {
            let (page, off) = self.locate(a);
            let n = (self.slots_per_page - off).min(dst.len() - i);
            let ent = self.ensure_page(page, false);
            ent.buf.read_range(off, &mut dst[i..i + n]);
            i += n;
            a += n as u64;
        }
    }

    /// Bulk-write `src` starting at `addr`.
    pub fn write_words(&mut self, addr: Addr, src: &[u64]) {
        let mut a = addr;
        let mut i = 0;
        while i < src.len() {
            let (page, off) = self.locate(a);
            let n = (self.slots_per_page - off).min(src.len() - i);
            let ent = self.ensure_page(page, true);
            ent.buf.write_range(off, &src[i..i + n]);
            i += n;
            a += n as u64;
        }
    }

    /// Bulk-read as `f64`.
    pub fn read_f64s(&mut self, addr: Addr, dst: &mut [f64]) {
        let mut a = addr;
        let mut i = 0;
        while i < dst.len() {
            let (page, off) = self.locate(a);
            let n = (self.slots_per_page - off).min(dst.len() - i);
            let ent = self.ensure_page(page, false);
            for k in 0..n {
                dst[i + k] = f64::from_bits(ent.buf.load(off + k));
            }
            i += n;
            a += n as u64;
        }
    }

    /// Bulk-write `f64`s.
    pub fn write_f64s(&mut self, addr: Addr, src: &[f64]) {
        let mut a = addr;
        let mut i = 0;
        while i < src.len() {
            let (page, off) = self.locate(a);
            let n = (self.slots_per_page - off).min(src.len() - i);
            let ent = self.ensure_page(page, true);
            for k in 0..n {
                ent.buf.store(off + k, src[i + k].to_bits());
            }
            i += n;
            a += n as u64;
        }
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    /// Acquire distributed lock `lock` (blocking). Lazy release
    /// consistency: the grant tells us the previous holder; we fetch the
    /// interval records we lack from it and invalidate accordingly.
    pub fn lock(&mut self, lock: u32) {
        self.throttle();
        let mgr_pid = self.team.lock_manager(lock);
        let mgr_gpid = self.team.gpid(mgr_pid);
        let prev: Option<Gpid> = if mgr_gpid == self.gpid() {
            // We manage this lock: local acquire (may still block while
            // a remote process holds it).
            let clock = self.endpoint.clock();
            let (tx, rx) = crossbeam_channel::bounded(1);
            let grant = self
                .core
                .lock()
                .lock_acquire(lock, self.gpid(), LockWaiter::Local(tx));
            deliver_grant(grant, clock);
            let prev = clock
                .blocked(|| rx.recv_timeout(self.call_timeout))
                .expect("lock grant lost");
            clock.msg_received();
            prev
        } else {
            match self.call(
                mgr_gpid,
                &Msg::LockReq {
                    epoch: self.epoch,
                    lock,
                },
            ) {
                Msg::LockRep { prev } => prev,
                other => panic!("unexpected reply to LockReq: {other:?}"),
            }
        };
        if let Some(prev) = prev {
            if prev != self.gpid() {
                let vc = self.core.lock().vc.clone();
                match self.call(
                    prev,
                    &Msg::RecordsReq {
                        epoch: self.epoch,
                        vc,
                    },
                ) {
                    Msg::RecordsRep { records } => {
                        self.core.lock().apply_records(&records);
                    }
                    other => panic!("unexpected reply to RecordsReq: {other:?}"),
                }
            }
        }
        DsmStats::bump(&self.stats.lock_acquires);
        self.sync_reset();
    }

    /// Release distributed lock `lock`: close our interval (making our
    /// writes forwardable) and notify the manager.
    pub fn unlock(&mut self, lock: u32) {
        {
            let mut c = self.core.lock();
            c.close_interval();
        }
        // Releasing downgraded Write pages; cached writable entries are stale.
        self.sync_reset();
        let mgr_pid = self.team.lock_manager(lock);
        let mgr_gpid = self.team.gpid(mgr_pid);
        if mgr_gpid == self.gpid() {
            let grant = self.core.lock().lock_release(lock);
            deliver_grant(grant, self.endpoint.clock());
        } else {
            self.endpoint
                .send(
                    mgr_gpid,
                    Msg::LockRelease {
                        epoch: self.epoch,
                        lock,
                    }
                    .to_bytes(),
                )
                .expect("lock manager vanished");
        }
    }

    /// Run `f` under lock `lock` (OpenMP `critical`).
    pub fn critical<R>(&mut self, lock: u32, f: impl FnOnce(&mut TmkCtx) -> R) -> R {
        self.lock(lock);
        let r = f(self);
        self.unlock(lock);
        r
    }

    /// In-region barrier. The master (pid 0) is the manager; slaves send
    /// their new interval records and receive everyone else's. The
    /// release direction follows `collectives.barrier_release`: flat
    /// replies per arrival, or one receiver-independent
    /// `BarrierRelease` relayed down the binomial tree.
    pub fn barrier(&mut self) {
        self.throttle();
        DsmStats::bump(&self.stats.barrier_arrivals);
        if self.nprocs() == 1 {
            self.core.lock().close_interval();
            self.sync_reset();
            return;
        }
        if self.my_pid == 0 {
            let ctrl = Arc::clone(
                self.ctrl
                    .as_ref()
                    .expect("the barrier manager has a ctrl buffer"),
            );
            self.barrier_master(&ctrl);
        } else {
            self.barrier_slave();
        }
        self.sync_reset();
    }

    fn barrier_slave(&mut self) {
        let (vc, records, pid) = {
            let mut c = self.core.lock();
            c.close_interval();
            (c.vc.clone(), c.drain_unsent(), c.my_pid)
        };
        let master = self.team.master();
        let arrive = Msg::BarrierArrive {
            epoch: self.epoch,
            pid,
            vc,
            records,
        };
        if self.collectives.barrier_release != crate::config::Broadcast::Tree {
            match self.call(master, &arrive) {
                Msg::BarrierRep { vc, records } => {
                    let mut c = self.core.lock();
                    c.apply_records(&records);
                    c.vc.merge(&vc);
                }
                other => panic!("unexpected reply to BarrierArrive: {other:?}"),
            }
            return;
        }
        // Tree release: the arrival is one-way; the release reaches us
        // relayed down the binomial tree through our parent.
        self.endpoint
            .send(master, arrive.to_bytes_compat(self.wire_enc))
            .unwrap_or_else(|e| panic!("{}: barrier arrival failed: {e}", self.gpid()));
        let ctrl = Arc::clone(self.ctrl.as_ref().expect("worker has a ctrl buffer"));
        let c = ctrl
            .lock()
            .recv_where(self.call_timeout, |c| {
                matches!(&c.msg, Msg::BarrierRelease { .. })
            })
            .expect("barrier release lost");
        // Relay the verbatim payload to our subtree *before* applying:
        // the subtree's release latency is the critical path.
        let n = self.team.nprocs();
        if !crate::tree::children(pid as usize, n).is_empty() {
            let d = self.endpoint.cost().relay_time();
            if !d.is_zero() {
                self.endpoint.clock().sleep(d);
            }
            let sent = crate::system::relay_tree_send(&self.endpoint, &self.team, pid, &c.raw);
            DsmStats::add(&self.stats.release_relays, sent as u64);
        }
        match c.msg {
            Msg::BarrierRelease { vc, records } => {
                let mut core = self.core.lock();
                core.apply_records(&records);
                core.vc.merge(&vc);
            }
            _ => unreachable!(),
        }
    }

    fn barrier_master(&mut self, ctrl: &Arc<Mutex<CtrlBuf>>) {
        let n = self.nprocs();
        let epoch = self.epoch;
        // Close our interval; our records are in the store.
        {
            let mut c = self.core.lock();
            c.close_interval();
            c.drain_unsent(); // master's records distribute via the release below
        }
        // Collect n-1 arrivals.
        let mut arrivals: Vec<(Ctrl, crate::types::Vc)> = Vec::with_capacity(n - 1);
        for _ in 0..n - 1 {
            let c = ctrl
                .lock()
                .recv_where(
                    self.call_timeout,
                    |c| matches!(&c.msg, Msg::BarrierArrive { epoch: e, .. } if *e == epoch),
                )
                .expect("barrier arrival lost");
            let (vc, records) = match &c.msg {
                Msg::BarrierArrive { vc, records, .. } => (vc.clone(), records.clone()),
                _ => unreachable!(),
            };
            self.core.lock().apply_records(&records);
            self.core.lock().vc.merge(&vc);
            arrivals.push((c, vc));
        }
        if self.collectives.barrier_release == crate::config::Broadcast::Tree {
            // Receiver-independent release: everything newer than the
            // pointwise-min arrival clock covers what every slave lacks
            // (over-delivery is fine — record application dedups), so
            // one payload can be relayed verbatim down the tree.
            let mut min_vc = arrivals[0].1.clone();
            for (_, vc) in arrivals.iter().skip(1) {
                for i in 0..min_vc.len() {
                    min_vc.set(i as Pid, min_vc.get(i as Pid).min(vc.get(i as Pid)));
                }
            }
            let (merged_vc, records) = {
                let c = self.core.lock();
                (c.vc.clone(), c.records.newer_than(&min_vc))
            };
            let bytes = Msg::BarrierRelease {
                vc: merged_vc,
                records,
            }
            .to_bytes_compat(self.wire_enc);
            crate::system::relay_tree_send(&self.endpoint, &self.team, 0, &bytes);
            return;
        }
        // Flat release: send each arrival the records it lacks and the
        // merged clock.
        let (merged_vc, replies): (crate::types::Vc, Vec<(Ctrl, Vec<crate::records::Record>)>) = {
            let c = self.core.lock();
            let merged = c.vc.clone();
            let replies = arrivals
                .into_iter()
                .map(|(ctrl_msg, vc)| {
                    let recs = c.records.newer_than(&vc);
                    (ctrl_msg, recs)
                })
                .collect();
            (merged, replies)
        };
        for (ctrl_msg, records) in replies {
            ctrl_msg.replier.expect("BarrierArrive is a request").reply(
                Msg::BarrierRep {
                    vc: merged_vc.clone(),
                    records,
                }
                .to_bytes_compat(self.wire_enc),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DsmStats as Stats;
    use nowmp_net::{HostId, NetModel, Network};

    fn make_ctx() -> TmkCtx {
        let net = Network::new(1, 1, NetModel::disabled());
        let ep = Arc::new(net.register(HostId(0)));
        let gpid = ep.gpid();
        let core = Arc::new(Mutex::new(ProcCore::new(
            DsmConfig {
                page_size: 64,
                ..DsmConfig::test_small()
            },
            gpid,
            Stats::new_shared(),
            gpid,
        )));
        TmkCtx::new(core, ep, None)
    }

    #[test]
    fn single_proc_read_write() {
        let mut ctx = make_ctx();
        ctx.write_f64(3, 2.5);
        assert_eq!(ctx.read_f64(3), 2.5);
        ctx.write_u64(100, 42); // different page (8 slots per page)
        assert_eq!(ctx.read_u64(100), 42);
        assert_eq!(ctx.read_u64(101), 0, "untouched slots read zero");
    }

    #[test]
    fn bulk_ops_cross_pages() {
        let mut ctx = make_ctx();
        let src: Vec<u64> = (0..50).collect();
        ctx.write_words(3, &src);
        let mut dst = vec![0u64; 50];
        ctx.read_words(3, &mut dst);
        assert_eq!(dst, src);

        let fsrc: Vec<f64> = (0..30).map(|i| i as f64 * 0.5).collect();
        ctx.write_f64s(100, &fsrc);
        let mut fdst = vec![0f64; 30];
        ctx.read_f64s(100, &mut fdst);
        assert_eq!(fdst, fsrc);
    }

    #[test]
    fn cache_hit_avoids_slow_path() {
        let mut ctx = make_ctx();
        ctx.write_u64(0, 1);
        let faults_before = ctx.stats().snapshot();
        for i in 0..8 {
            ctx.write_u64(i, i);
            let _ = ctx.read_u64(i);
        }
        let faults_after = ctx.stats().snapshot();
        assert_eq!(
            faults_after.write_faults, faults_before.write_faults,
            "same-page accesses must hit the cache"
        );
    }

    #[test]
    fn sync_reset_forces_revalidation() {
        let mut ctx = make_ctx();
        ctx.write_u64(0, 7);
        ctx.sync_reset();
        // Still readable (state preserved in core), value intact.
        assert_eq!(ctx.read_u64(0), 7);
    }

    #[test]
    fn single_proc_barrier_is_local() {
        let mut ctx = make_ctx();
        ctx.write_u64(0, 7);
        ctx.barrier();
        assert_eq!(ctx.read_u64(0), 7);
        assert_eq!(ctx.stats().snapshot().barrier_arrivals, 1);
    }

    #[test]
    fn self_managed_lock_roundtrip() {
        let mut ctx = make_ctx();
        ctx.lock(0);
        ctx.write_u64(0, 5);
        ctx.unlock(0);
        ctx.lock(0);
        assert_eq!(ctx.read_u64(0), 5);
        ctx.unlock(0);
        assert_eq!(ctx.stats().snapshot().lock_acquires, 2);
    }

    #[test]
    fn critical_section_helper() {
        let mut ctx = make_ctx();
        let v = ctx.critical(3, |c| {
            c.write_u64(9, 11);
            c.read_u64(9)
        });
        assert_eq!(v, 11);
    }

    #[test]
    fn params_roundtrip() {
        let mut ctx = make_ctx();
        ctx.set_params(vec![1, 2, 3]);
        assert_eq!(ctx.params(), &[1, 2, 3]);
    }
}
