//! The sharded page table — fine-grained locking for per-page state.
//!
//! Historically `ProcCore` held `pages: Vec<PageMeta>` directly, so
//! *every* page-state transition — an application-thread fault on page
//! 7, a service-thread `PageReq` for page 900 — serialized on the one
//! core mutex. This module moves the page metadata into a
//! [`PageTable`]: a fixed set of [`SpinLock`] shards, each owning an
//! interleaved family of 8-page ranges, reachable through RAII
//! [`PageGuard`]s. Touching distinct pages in distinct shards never
//! contends, and the service thread can answer the most common request
//! (a full-page fetch of an already-shared page) from the shard lock
//! alone, without taking the core mutex at all (see
//! [`PageTable::serve_shared_fast`]).
//!
//! ## Layout
//!
//! Pages map to shards in interleaved ranges of [`RANGE`] pages:
//! shard(p) = (p / RANGE) % [`SHARDS`]. Neighbouring pages — which
//! worksharing loops touch together — share a shard (one lock
//! acquisition covers a block scan), while blocks [`RANGE`] apart land
//! on different locks, so threads working disjoint regions of the
//! address space take disjoint locks.
//!
//! ## Lock discipline
//!
//! * Lock order is **core mutex → shard**; never acquire the core
//!   mutex (or block on anything) while holding a [`PageGuard`].
//! * Never hold two [`PageGuard`]s at once — the protocol only ever
//!   needs one page's state per transition, and the spin locks are
//!   not reentrant.
//! * Whole-table rewrites (GC commit) take a [`FreezeGuard`] first so
//!   the lock-free service fast path stands down for the duration.

use crate::page::PageMeta;
use crate::types::{Epoch, PageId, Vc};
use nowmp_net::Gpid;
use nowmp_util::{LockGuard, SpinLock};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

/// Pages per contiguous range; ranges are dealt round-robin to shards.
pub const RANGE: usize = 8;
/// Number of independent shard locks.
pub const SHARDS: usize = 16;

/// One shard: a dense slice of page metadata plus the shard-local
/// slice of the open interval's dirty list. Keeping the dirty list
/// *in* the shard means enrolling a freshly-written page is covered
/// by the shard lock the write fault already holds — the interval
/// bookkeeping needs no core-mutex-protected side list.
struct Shard {
    /// Metadata for pages `(p / RANGE) % SHARDS == s`, in range order.
    pages: Vec<PageMeta>,
    /// This shard's pages written in the open interval (insertion
    /// order; deduplicated via [`PageMeta::dirty`]).
    dirty: Vec<PageId>,
}

/// Per-page metadata behind interleaved-range spin-lock shards.
pub struct PageTable {
    /// Shard `s` owns pages `p` with `(p / RANGE) % SHARDS == s`,
    /// stored densely in range order.
    shards: Vec<SpinLock<Shard>>,
    /// Total pages enrolled in shard dirty lists — lets
    /// `close_interval` skip the 16-shard drain sweep when the
    /// interval wrote nothing (the common case for sync-only epochs).
    ndirty: AtomicUsize,
    /// Number of pages the table covers (monotone; grows under `grow`).
    len: AtomicUsize,
    /// Serializes [`Self::ensure`] so concurrent growers cannot
    /// interleave their appends. Lock order: `grow` → shard.
    grow: SpinLock<()>,
    /// The protocol epoch this table's contents belong to — the
    /// service fast path refuses requests from any other epoch.
    epoch: AtomicU32,
    /// Raised (via [`Self::freeze`]) around whole-table rewrites;
    /// while set, the service fast path stands down.
    frozen: AtomicBool,
}

impl PageTable {
    /// An empty table at epoch 0.
    pub fn new() -> Self {
        PageTable {
            shards: (0..SHARDS)
                .map(|_| {
                    SpinLock::new(Shard {
                        pages: Vec::new(),
                        dirty: Vec::new(),
                    })
                })
                .collect(),
            ndirty: AtomicUsize::new(0),
            len: AtomicUsize::new(0),
            grow: SpinLock::new(()),
            epoch: AtomicU32::new(0),
            frozen: AtomicBool::new(false),
        }
    }

    /// Shard index and dense in-shard index of `page`.
    #[inline]
    fn locate(page: usize) -> (usize, usize) {
        let range = page / RANGE;
        (range % SHARDS, (range / SHARDS) * RANGE + page % RANGE)
    }

    /// Number of pages covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True when the table covers no pages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grow to cover `n` pages, filling new slots with
    /// `PageMeta::new(owner)`. Cheap when already large enough.
    pub fn ensure(&self, n: usize, owner: Gpid) {
        if self.len() >= n {
            return;
        }
        let _g = self.grow.lock();
        let cur = self.len.load(Ordering::Acquire);
        for p in cur..n {
            let (s, idx) = Self::locate(p);
            let mut shard = self.shards[s].lock();
            debug_assert_eq!(shard.pages.len(), idx, "dense shard fill out of order");
            shard.pages.push(PageMeta::new(owner));
        }
        self.len.store(n.max(cur), Ordering::Release);
    }

    /// Lock the shard owning `page` and return exclusive access to its
    /// metadata. Panics when `page` is beyond [`Self::len`].
    #[inline]
    pub fn guard(&self, page: PageId) -> PageGuard<'_> {
        let p = page as usize;
        assert!(p < self.len(), "page {page} beyond table ({})", self.len());
        let (s, idx) = Self::locate(p);
        PageGuard {
            shard: self.shards[s].lock(),
            idx,
            page,
            ndirty: &self.ndirty,
        }
    }

    /// Like [`Self::guard`], but `None` for pages beyond the table.
    #[inline]
    pub fn get(&self, page: PageId) -> Option<PageGuard<'_>> {
        if (page as usize) < self.len() {
            Some(self.guard(page))
        } else {
            None
        }
    }

    /// Visit every page in ascending order, one shard acquisition per
    /// contiguous range. `f` must not touch the table (the shard lock
    /// is held across the call).
    pub fn for_each(&self, mut f: impl FnMut(PageId, &mut PageMeta)) {
        let n = self.len();
        let mut p = 0usize;
        while p < n {
            let end = (p + RANGE - p % RANGE).min(n);
            let (s, idx) = Self::locate(p);
            let mut shard = self.shards[s].lock();
            for q in p..end {
                f(q as PageId, &mut shard.pages[idx + (q - p)]);
            }
            p = end;
        }
    }

    /// Pages currently enrolled in shard dirty lists (the open
    /// interval's write set). Lock-free read.
    #[inline]
    pub fn dirty_count(&self) -> usize {
        self.ndirty.load(Ordering::Acquire)
    }

    /// Take the open interval's dirty list: every shard's slice,
    /// concatenated in shard order. Does *not* clear the per-page
    /// [`PageMeta::dirty`] flags — the caller resets each while doing
    /// its per-page close work (twin → diff), exactly one guard per
    /// page. Callers must hold the core mutex (all dirty-list writers
    /// do), so the count and the lists cannot race the drain.
    pub fn drain_dirty(&self) -> Vec<PageId> {
        if self.dirty_count() == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for s in &self.shards {
            out.append(&mut s.lock().dirty);
        }
        self.ndirty.store(0, Ordering::Release);
        out
    }

    /// Count pages satisfying `pred` (diagnostics, GC sizing).
    pub fn count(&self, pred: impl Fn(&PageMeta) -> bool) -> usize {
        let mut n = 0;
        self.for_each(|_, m| {
            if pred(m) {
                n += 1;
            }
        });
        n
    }

    /// Record the protocol epoch the table's contents now belong to.
    pub fn set_epoch(&self, epoch: Epoch) {
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Stand the service fast path down until the guard drops —
    /// taken around whole-table rewrites (GC / adaptation commits)
    /// whose intermediate states must not be served.
    pub fn freeze(&self) -> FreezeGuard<'_> {
        self.frozen.store(true, Ordering::SeqCst);
        FreezeGuard { table: self }
    }

    /// Service-thread fast path: serve a full-page request from the
    /// shard lock alone — no core mutex — when doing so needs no
    /// core-state mutation. That is the steady-state case: the page is
    /// already `shared` with a local copy, so serving is a pure read of
    /// `(applied, data)`, both consistent under the shard lock (the
    /// application thread's transitions hold the same lock).
    ///
    /// Returns `None` — caller falls back to the core-locked
    /// [`crate::core::ProcCore::serve_page`] — when the table is
    /// frozen, the request's epoch is stale, the page is unknown, or
    /// the serve would transition state (exclusive page becoming
    /// shared, zero-page materialization, ownership redirect).
    pub fn serve_shared_fast(&self, page: PageId, epoch: Epoch) -> Option<crate::msg::Msg> {
        if (page as usize) >= self.len() {
            return None;
        }
        let meta = self.guard(page);
        // Checked under the shard lock: a commit that froze the table
        // before rewriting this shard is ordered before our acquire.
        if self.frozen.load(Ordering::SeqCst) || self.epoch.load(Ordering::Acquire) != epoch {
            return None;
        }
        if !meta.shared {
            return None;
        }
        let data = meta.data.as_ref()?;
        Some(crate::msg::Msg::PageRep {
            applied: meta.applied.iter_nonzero().collect(),
            words: data.snapshot(),
            redirect: None,
        })
    }
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Exclusive access to one page's metadata; releases its shard on drop.
pub struct PageGuard<'a> {
    shard: LockGuard<'a, Shard>,
    idx: usize,
    page: PageId,
    ndirty: &'a AtomicUsize,
}

impl PageGuard<'_> {
    /// Enroll this page in the open interval's write set: flip
    /// [`PageMeta::dirty`] and append to the owning shard's dirty
    /// list. Idempotent; covered entirely by the shard lock this
    /// guard already holds, so write faults pay no extra
    /// synchronization for the interval bookkeeping.
    pub fn mark_dirty(&mut self) {
        if !self.shard.pages[self.idx].dirty {
            self.shard.pages[self.idx].dirty = true;
            let page = self.page;
            self.shard.dirty.push(page);
            self.ndirty.fetch_add(1, Ordering::AcqRel);
        }
    }
}

impl Deref for PageGuard<'_> {
    type Target = PageMeta;
    #[inline]
    fn deref(&self) -> &PageMeta {
        &self.shard.pages[self.idx]
    }
}

impl DerefMut for PageGuard<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut PageMeta {
        &mut self.shard.pages[self.idx]
    }
}

/// RAII handle holding the service fast path down; see
/// [`PageTable::freeze`].
pub struct FreezeGuard<'a> {
    table: &'a PageTable,
}

impl Drop for FreezeGuard<'_> {
    fn drop(&mut self) {
        self.table.frozen.store(false, Ordering::SeqCst);
    }
}

/// Reset helper for GC / adaptation commits: wipe one page's
/// consistency metadata for a new epoch of `nprocs` processes,
/// optionally installing a new directory owner. Data (if any) is kept
/// and the state re-derived from its presence.
pub fn reset_meta(m: &mut PageMeta, nprocs: usize, owner: Option<Gpid>) {
    m.twin = None;
    m.pending.clear();
    m.dirty = false;
    m.applied = Vc::new(nprocs);
    m.shared = true;
    m.zero_lent = false;
    if let Some(o) = owner {
        m.owner = o;
    }
    m.state = if m.data.is_some() {
        crate::page::PageState::Read
    } else {
        crate::page::PageState::Invalid
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageState;
    use std::sync::Arc;

    #[test]
    fn interleaved_mapping_is_dense_per_shard() {
        // Pages 0..RANGE*SHARDS*3 must fill every shard densely.
        let t = PageTable::new();
        t.ensure(RANGE * SHARDS * 3, Gpid(1));
        assert_eq!(t.len(), RANGE * SHARDS * 3);
        let mut seen = 0usize;
        t.for_each(|p, m| {
            assert_eq!(p as usize, seen, "ascending visit order");
            assert_eq!(m.owner, Gpid(1));
            seen += 1;
        });
        assert_eq!(seen, t.len());
    }

    #[test]
    fn neighbours_share_a_shard_distant_blocks_do_not() {
        let (s0, _) = PageTable::locate(0);
        let (s7, _) = PageTable::locate(RANGE - 1);
        let (s8, _) = PageTable::locate(RANGE);
        assert_eq!(s0, s7, "a block shares one lock");
        assert_ne!(s0, s8, "the next block uses another");
    }

    #[test]
    fn guard_mutations_stick() {
        let t = PageTable::new();
        t.ensure(4, Gpid(1));
        {
            let mut g = t.guard(3);
            g.shared = true;
            g.owner = Gpid(9);
        }
        let g = t.guard(3);
        assert!(g.shared);
        assert_eq!(g.owner, Gpid(9));
        assert!(t.get(4).is_none());
    }

    #[test]
    fn ensure_races_produce_exactly_n_pages() {
        let t = Arc::new(PageTable::new());
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for n in 1..=200usize {
                        t.ensure(n * (k + 1), Gpid(k as u32));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 800);
        let mut count = 0;
        t.for_each(|_, _| count += 1);
        assert_eq!(count, 800, "every slot reachable exactly once");
    }

    #[test]
    fn fast_serve_requires_shared_copy_and_epoch() {
        let t = PageTable::new();
        t.ensure(2, Gpid(1));
        assert!(t.serve_shared_fast(0, 0).is_none(), "no data yet");
        {
            let mut g = t.guard(0);
            g.data = Some(Arc::new(crate::page::PageBuf::new(8)));
            g.state = PageState::Read;
        }
        assert!(t.serve_shared_fast(0, 0).is_none(), "exclusive: fallback");
        t.guard(0).shared = true;
        let rep = t.serve_shared_fast(0, 0).expect("shared page serves fast");
        match rep {
            crate::msg::Msg::PageRep {
                words, redirect, ..
            } => {
                assert_eq!(words.len(), 8);
                assert!(redirect.is_none());
            }
            other => panic!("expected PageRep, got {other:?}"),
        }
        assert!(t.serve_shared_fast(0, 1).is_none(), "stale epoch: fallback");
        t.set_epoch(1);
        assert!(t.serve_shared_fast(0, 1).is_some());
        {
            let _f = t.freeze();
            assert!(t.serve_shared_fast(0, 1).is_none(), "frozen: fallback");
        }
        assert!(t.serve_shared_fast(0, 1).is_some(), "thawed again");
        assert!(t.serve_shared_fast(9, 1).is_none(), "unknown page");
    }

    #[test]
    fn dirty_enrollment_is_shard_local_and_drains_once() {
        let t = PageTable::new();
        t.ensure(RANGE * SHARDS, Gpid(1));
        // Mark pages across three different shards; double-marking one
        // must not enroll it twice.
        for &p in &[0u32, RANGE as u32, (2 * RANGE) as u32, 0] {
            t.guard(p).mark_dirty();
        }
        assert_eq!(t.dirty_count(), 3);
        assert!(t.guard(0).dirty, "per-page flag set");
        let mut drained = t.drain_dirty();
        drained.sort_unstable();
        assert_eq!(drained, vec![0, RANGE as u32, (2 * RANGE) as u32]);
        assert_eq!(t.dirty_count(), 0);
        assert!(t.drain_dirty().is_empty(), "second drain is empty");
        // The flag survives the drain — the interval-close caller
        // resets it per page while creating diffs.
        assert!(t.guard(0).dirty);
    }

    #[test]
    fn disjoint_shards_do_not_contend() {
        // Hold page 0's shard; page RANGE (next block, other shard)
        // must stay immediately lockable.
        let t = PageTable::new();
        t.ensure(RANGE * 2, Gpid(1));
        let _held = t.guard(0);
        let g = t.guard(RANGE as PageId);
        assert_eq!(g.owner, Gpid(1));
    }
}
