//! DSM configuration.

use std::sync::Arc;
use std::time::Duration;

/// Shape of one cluster-wide collective: how a root-anchored message
/// wave traverses the team (fork dissemination, join reduction, or
/// barrier release).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Broadcast {
    /// Master exchanges with every slave itself: `n - 1` messages
    /// serialized at the master (the original TreadMarks shape — kept
    /// as the A/B baseline for `whatif_scale --broadcast flat`).
    Flat,
    /// Binomial tree over team rank order: the master exchanges with
    /// O(log n) children who relay/aggregate onward on their own links
    /// (see [`crate::tree`]).
    #[default]
    Tree,
}

/// The shape of every cluster-wide collective, configured in one
/// place. Each direction of the fork/join/barrier protocol is an
/// independent flat-vs-tree choice:
///
/// * `fork` — downstream `Fork`/`JoinInit` dissemination (PR 4);
/// * `join_reduce` — upstream `JoinArrive` collection: children
///   aggregate their subtree's records + vector clocks before
///   forwarding one merged arrival;
/// * `barrier_release` — downstream barrier release fan-out after the
///   master merged all `BarrierArrive`s.
///
/// `fork` doubles as the wire-compatibility switch: `Broadcast::Flat`
/// there keeps every payload byte-identical to the 1999 flat encoding
/// (the Table 1/2 calibration assumption), which is why the paper
/// reproducers pin [`CollectiveConfig::all_flat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollectiveConfig {
    /// `Fork`/`JoinInit` dissemination shape.
    pub fork: Broadcast,
    /// `JoinArrive` collection shape.
    pub join_reduce: Broadcast,
    /// Barrier release fan-out shape.
    pub barrier_release: Broadcast,
}

impl CollectiveConfig {
    /// Every collective flat: the 1999 system's shape, byte-identical
    /// wire payloads — what the Table 1/2 pins assume.
    pub fn all_flat() -> Self {
        CollectiveConfig {
            fork: Broadcast::Flat,
            join_reduce: Broadcast::Flat,
            barrier_release: Broadcast::Flat,
        }
    }

    /// Every collective over the binomial tree (the default).
    pub fn all_tree() -> Self {
        CollectiveConfig {
            fork: Broadcast::Tree,
            join_reduce: Broadcast::Tree,
            barrier_release: Broadcast::Tree,
        }
    }

    /// Builder: set the fork dissemination shape.
    pub fn with_fork(mut self, b: Broadcast) -> Self {
        self.fork = b;
        self
    }

    /// Builder: set the join-reduce collection shape.
    pub fn with_join_reduce(mut self, b: Broadcast) -> Self {
        self.join_reduce = b;
        self
    }

    /// Builder: set the barrier release fan-out shape.
    pub fn with_barrier_release(mut self, b: Broadcast) -> Self {
        self.barrier_release = b;
        self
    }
}

/// Data-plane overlap configuration: how aggressively the DSM hides
/// demand-paging latency behind computation (ISSUE 7).
///
/// Three independent levers, all off in [`DataPlaneConfig::demand`]
/// (the faithful 1999 system: every fault blocks on sequential
/// round-trips, nothing moves ahead of demand):
///
/// * `pipeline` — scatter-gather faults: a multi-creator diff fault
///   sends every `DiffReq` before collecting any reply, paying the
///   max of the creators' latencies instead of the sum;
/// * `prefetch` — release-phase prefetch: after a `Fork` or
///   `BarrierRelease` lands, asynchronously re-request up to this
///   many of the pages this rank faulted on last epoch, so the diffs
///   are in flight while the worker computes its interior (0 = off);
/// * `piggyback_budget` — hot-diff piggybacking: `Fork` /
///   `BarrierRelease` payloads carry up to this many bytes of the
///   sender's own hottest diffs alongside the write notices, saving
///   the receivers a round-trip entirely (0 = off).
///
/// Prefetch traffic pays the same wire and admission costs as demand
/// traffic ([`NetModel::receive_time`] et al.) — overlap hides
/// latency, it never un-charges it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataPlaneConfig {
    /// Scatter-gather multi-creator faults (send all, then collect).
    pub pipeline: bool,
    /// Max pages re-requested asynchronously after each release
    /// (0 disables release-phase prefetch).
    pub prefetch: usize,
    /// Max bytes of hot diffs piggybacked on each `Fork` /
    /// `BarrierRelease` payload (0 disables piggybacking).
    pub piggyback_budget: usize,
}

impl DataPlaneConfig {
    /// The faithful 1999 demand-paging data plane: sequential blocking
    /// fetches, no prefetch, no piggyback — byte-identical wire
    /// payloads, what the Table 1/2 pins assume.
    pub fn demand() -> Self {
        DataPlaneConfig {
            pipeline: false,
            prefetch: 0,
            piggyback_budget: 0,
        }
    }

    /// Fully overlapped data plane (the default): pipelined faults,
    /// 32-page release prefetch, 1 KB piggyback budget. The piggyback
    /// budget is deliberately small: every piggybacked byte rides
    /// *every* edge of the broadcast tree, so only diffs small and hot
    /// enough to beat `n - 1` redundant copies (reduction scratch,
    /// straddled boundary words) earn their wire cost — bulk diffs are
    /// exactly what prefetch already moves point-to-point.
    pub fn overlap() -> Self {
        DataPlaneConfig {
            pipeline: true,
            prefetch: 32,
            piggyback_budget: 1 << 10,
        }
    }

    /// Builder: toggle scatter-gather fault pipelining.
    pub fn with_pipeline(mut self, on: bool) -> Self {
        self.pipeline = on;
        self
    }

    /// Builder: set the per-release prefetch page budget.
    pub fn with_prefetch(mut self, pages: usize) -> Self {
        self.prefetch = pages;
        self
    }

    /// Builder: set the per-collective piggyback byte budget.
    pub fn with_piggyback_budget(mut self, bytes: usize) -> Self {
        self.piggyback_budget = bytes;
        self
    }

    /// True if any piggyback budget is configured.
    pub fn piggybacks(&self) -> bool {
        self.piggyback_budget > 0
    }
}

impl Default for DataPlaneConfig {
    fn default() -> Self {
        Self::overlap()
    }
}

/// Tunable parameters of the DSM protocol.
#[derive(Clone)]
pub struct DsmConfig {
    /// Page size in bytes (power of two, ≥ 64; paper/TreadMarks: 4096).
    pub page_size: usize,
    /// Bytes of stored diff data that trigger a garbage collection at
    /// the next adaptation point (TreadMarks GCs when consistency
    /// memory is exhausted).
    pub gc_diff_threshold: usize,
    /// Create diffs lazily (on first request / next write) instead of
    /// eagerly at interval close. TreadMarks is lazy; eager is our
    /// default for determinism. Ablated in `nowmp-bench`.
    pub lazy_diffs: bool,
    /// Deadline for any single protocol request (turns protocol
    /// deadlocks into errors instead of hangs).
    pub call_timeout: Duration,
    /// Optional hook invoked at every synchronization operation and
    /// page fault; the adaptive layer installs the migration freeze
    /// gate here ("all processes wait for the completion of the
    /// migration").
    pub throttle: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Shape of every cluster-wide collective (fork dissemination,
    /// join reduction, barrier release). Default: all tree.
    pub collectives: CollectiveConfig,
    /// Data-plane overlap levers (pipelined faults, release-phase
    /// prefetch, piggybacked hot diffs). Default: fully overlapped.
    pub dataplane: DataPlaneConfig,
    /// Page-space key in multi-tenant runs: the cluster scheduler
    /// constructs one `DsmSystem` per job, keyed by the job's id, so
    /// pages, gpids and stats of one job never alias another's.
    /// `0` is the single-job default.
    pub job: u32,
}

impl std::fmt::Debug for DsmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsmConfig")
            .field("page_size", &self.page_size)
            .field("gc_diff_threshold", &self.gc_diff_threshold)
            .field("lazy_diffs", &self.lazy_diffs)
            .field("call_timeout", &self.call_timeout)
            .field("throttle", &self.throttle.as_ref().map(|_| "<hook>"))
            .field("collectives", &self.collectives)
            .field("dataplane", &self.dataplane)
            .field("job", &self.job)
            .finish()
    }
}

impl DsmConfig {
    /// TreadMarks-like defaults: 4 KB pages, 8 MB diff budget, eager diffs.
    pub fn default_4k() -> Self {
        DsmConfig {
            page_size: 4096,
            gc_diff_threshold: 8 << 20,
            lazy_diffs: false,
            call_timeout: Duration::from_secs(120),
            throttle: None,
            collectives: CollectiveConfig::default(),
            dataplane: DataPlaneConfig::default(),
            job: 0,
        }
    }

    /// Builder: key this DSM instance's page space by a job id
    /// (multi-tenant construction; see the `job` field).
    pub fn with_job(mut self, job: u32) -> Self {
        self.job = job;
        self
    }

    /// Builder: set the data-plane overlap levers — paper reproducers
    /// pin `with_dataplane(DataPlaneConfig::demand())` alongside
    /// `all_flat()` collectives.
    pub fn with_dataplane(mut self, dataplane: DataPlaneConfig) -> Self {
        self.dataplane = dataplane;
        self
    }

    /// Builder: set the collective shapes, mirroring the
    /// `CostModel::with_*` idiom — paper reproducers pin
    /// `with_collectives(CollectiveConfig::all_flat())` in one place.
    pub fn with_collectives(mut self, collectives: CollectiveConfig) -> Self {
        self.collectives = collectives;
        self
    }

    /// Builder: set only the fork dissemination shape.
    pub fn with_fork_broadcast(mut self, b: Broadcast) -> Self {
        self.collectives.fork = b;
        self
    }

    /// Small pages for tests: exercises multi-page logic with tiny data.
    pub fn test_small() -> Self {
        DsmConfig {
            page_size: 256,
            gc_diff_threshold: 1 << 20,
            ..Self::default_4k()
        }
    }

    /// Slots (8-byte words) per page.
    pub fn slots_per_page(&self) -> usize {
        self.page_size / 8
    }

    /// Validate invariants; panics on nonsense configurations.
    pub fn validate(&self) {
        assert!(self.page_size >= 64, "page_size must be >= 64");
        assert!(
            self.page_size.is_power_of_two(),
            "page_size must be a power of two"
        );
        assert_eq!(
            self.page_size % 8,
            0,
            "page_size must hold whole 8-byte slots"
        );
    }
}

impl Default for DsmConfig {
    fn default() -> Self {
        Self::default_4k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        DsmConfig::default_4k().validate();
        DsmConfig::test_small().validate();
    }

    #[test]
    fn collective_builders() {
        let c = DsmConfig::default_4k();
        assert_eq!(c.collectives, CollectiveConfig::all_tree());
        let flat = DsmConfig::default_4k().with_collectives(CollectiveConfig::all_flat());
        assert_eq!(flat.collectives.fork, Broadcast::Flat);
        assert_eq!(flat.collectives.join_reduce, Broadcast::Flat);
        assert_eq!(flat.collectives.barrier_release, Broadcast::Flat);
        let mixed = DsmConfig::default_4k()
            .with_collectives(CollectiveConfig::all_tree().with_join_reduce(Broadcast::Flat));
        assert_eq!(mixed.collectives.fork, Broadcast::Tree);
        assert_eq!(mixed.collectives.join_reduce, Broadcast::Flat);
        let forked = DsmConfig::default_4k().with_fork_broadcast(Broadcast::Flat);
        assert_eq!(forked.collectives.fork, Broadcast::Flat);
        assert_eq!(forked.collectives.barrier_release, Broadcast::Tree);
    }

    #[test]
    fn dataplane_builders() {
        assert_eq!(
            DsmConfig::default_4k().dataplane,
            DataPlaneConfig::overlap()
        );
        let demand = DataPlaneConfig::demand();
        assert!(!demand.pipeline);
        assert_eq!(demand.prefetch, 0);
        assert!(!demand.piggybacks());
        let tuned = DataPlaneConfig::demand()
            .with_pipeline(true)
            .with_prefetch(4)
            .with_piggyback_budget(1024);
        assert!(tuned.pipeline);
        assert_eq!(tuned.prefetch, 4);
        assert!(tuned.piggybacks());
        let pinned = DsmConfig::default_4k().with_dataplane(DataPlaneConfig::demand());
        assert_eq!(pinned.dataplane, DataPlaneConfig::demand());
    }

    #[test]
    fn slots_per_page() {
        assert_eq!(DsmConfig::default_4k().slots_per_page(), 512);
        assert_eq!(DsmConfig::test_small().slots_per_page(), 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_panics() {
        let cfg = DsmConfig {
            page_size: 1000,
            ..DsmConfig::default_4k()
        };
        cfg.validate();
    }
}
