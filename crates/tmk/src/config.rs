//! DSM configuration.

use std::sync::Arc;
use std::time::Duration;

/// How the master disseminates the fork-time broadcasts (`Fork`, and
/// `JoinInit` at team formation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Broadcast {
    /// Master sends to every slave itself: `n - 1` sends serialized on
    /// the master's link (the original TreadMarks shape — kept as the
    /// A/B baseline for `whatif_scale --broadcast flat`).
    Flat,
    /// Binomial tree over team rank order: the master sends to
    /// O(log n) children who relay onward on their own links (see
    /// [`crate::tree`]).
    #[default]
    Tree,
}

/// Tunable parameters of the DSM protocol.
#[derive(Clone)]
pub struct DsmConfig {
    /// Page size in bytes (power of two, ≥ 64; paper/TreadMarks: 4096).
    pub page_size: usize,
    /// Bytes of stored diff data that trigger a garbage collection at
    /// the next adaptation point (TreadMarks GCs when consistency
    /// memory is exhausted).
    pub gc_diff_threshold: usize,
    /// Create diffs lazily (on first request / next write) instead of
    /// eagerly at interval close. TreadMarks is lazy; eager is our
    /// default for determinism. Ablated in `nowmp-bench`.
    pub lazy_diffs: bool,
    /// Deadline for any single protocol request (turns protocol
    /// deadlocks into errors instead of hangs).
    pub call_timeout: Duration,
    /// Optional hook invoked at every synchronization operation and
    /// page fault; the adaptive layer installs the migration freeze
    /// gate here ("all processes wait for the completion of the
    /// migration").
    pub throttle: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Fork/JoinInit dissemination shape (default: binomial tree).
    pub fork_broadcast: Broadcast,
}

impl std::fmt::Debug for DsmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsmConfig")
            .field("page_size", &self.page_size)
            .field("gc_diff_threshold", &self.gc_diff_threshold)
            .field("lazy_diffs", &self.lazy_diffs)
            .field("call_timeout", &self.call_timeout)
            .field("throttle", &self.throttle.as_ref().map(|_| "<hook>"))
            .field("fork_broadcast", &self.fork_broadcast)
            .finish()
    }
}

impl DsmConfig {
    /// TreadMarks-like defaults: 4 KB pages, 8 MB diff budget, eager diffs.
    pub fn default_4k() -> Self {
        DsmConfig {
            page_size: 4096,
            gc_diff_threshold: 8 << 20,
            lazy_diffs: false,
            call_timeout: Duration::from_secs(120),
            throttle: None,
            fork_broadcast: Broadcast::default(),
        }
    }

    /// Small pages for tests: exercises multi-page logic with tiny data.
    pub fn test_small() -> Self {
        DsmConfig {
            page_size: 256,
            gc_diff_threshold: 1 << 20,
            ..Self::default_4k()
        }
    }

    /// Slots (8-byte words) per page.
    pub fn slots_per_page(&self) -> usize {
        self.page_size / 8
    }

    /// Validate invariants; panics on nonsense configurations.
    pub fn validate(&self) {
        assert!(self.page_size >= 64, "page_size must be >= 64");
        assert!(
            self.page_size.is_power_of_two(),
            "page_size must be a power of two"
        );
        assert_eq!(
            self.page_size % 8,
            0,
            "page_size must hold whole 8-byte slots"
        );
    }
}

impl Default for DsmConfig {
    fn default() -> Self {
        Self::default_4k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        DsmConfig::default_4k().validate();
        DsmConfig::test_small().validate();
    }

    #[test]
    fn slots_per_page() {
        assert_eq!(DsmConfig::default_4k().slots_per_page(), 512);
        assert_eq!(DsmConfig::test_small().slots_per_page(), 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_panics() {
        let cfg = DsmConfig {
            page_size: 1000,
            ..DsmConfig::default_4k()
        };
        cfg.validate();
    }
}
