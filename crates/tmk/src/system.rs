//! System orchestration: process bring-up, fork-join, GC rounds, team
//! commits, checkpoint images.
//!
//! * [`DsmSystem`] owns the process threads (one application + one
//!   service thread per DSM process) over a [`nowmp_net::Network`];
//! * [`MasterCtl`] is the master process's handle: sequential-phase
//!   shared memory access, `parallel()` (the `Tmk_fork`/`Tmk_join`
//!   pair), and the **adaptation SPI** used by the adaptive layer
//!   (`run_gc`, `commit_team`, `spawn_worker` bridging, checkpoint
//!   export/import) — the paper's "purely TreadMarks-internal" changes
//!   surface here as an explicit internal API;
//! * [`RegionRunner`] is the compiled application: region id → outlined
//!   procedure (what SUIF emits from each OpenMP parallel construct).

use crate::config::{Broadcast, DsmConfig};
use crate::core::ProcCore;
use crate::ctx::{CtrlBuf, TmkCtx};
use crate::gc::{compute_gc_plan, page_writes, GcPlan, LeaveSink};
use crate::msg::{DirRle, Msg, RegEntry};
use crate::page::PageState;
use crate::records::Record;
use crate::service::{service_loop, Ctrl};
use crate::shm::{Allocator, Registry};
use crate::stats::DsmStats;
use crate::tree;
use crate::types::{Addr, Epoch, PageId, Pid, Team, Vc};
use nowmp_net::{Endpoint, Gpid, HostId, NetError, Network};
use nowmp_util::wire::{Encoding, Wire};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// The compiled application: dispatches outlined parallel regions.
///
/// This is the seam where the SUIF OpenMP compiler would plug in; the
/// `nowmp-omp` crate implements it from registered closures.
pub trait RegionRunner: Send + Sync + 'static {
    /// Execute region `region` with the context's parameters.
    fn run(&self, region: u32, ctx: &mut TmkCtx);
}

/// A no-op runner (for systems driven purely through the SPI in tests).
pub struct NullRunner;

impl RegionRunner for NullRunner {
    fn run(&self, _region: u32, _ctx: &mut TmkCtx) {}
}

/// Result of a GC round, consumed by the adaptive layer.
#[derive(Debug, Default)]
pub struct GcOutcome {
    /// Owner per page after GC.
    pub dir: Vec<Gpid>,
    /// Complete holders per page (owner first; may include leavers).
    pub complete: Vec<Vec<Gpid>>,
    /// Pages each process must drop at commit.
    pub drops: HashMap<Gpid, Vec<PageId>>,
    /// Pages fetched during the completion phase, per process.
    pub fetch_pages: HashMap<Gpid, usize>,
}

/// Shared bookkeeping for one DSM deployment.
pub struct DsmSystem {
    net: Network,
    cfg: DsmConfig,
    stats: Arc<DsmStats>,
    runner: Arc<dyn RegionRunner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    cores: Mutex<HashMap<Gpid, Arc<Mutex<ProcCore>>>>,
}

impl DsmSystem {
    /// Create a system over `net` running `runner`'s regions.
    pub fn new(net: Network, cfg: DsmConfig, runner: Arc<dyn RegionRunner>) -> Arc<Self> {
        cfg.validate();
        Arc::new(DsmSystem {
            net,
            cfg,
            stats: DsmStats::new_shared(),
            runner,
            threads: Mutex::new(Vec::new()),
            cores: Mutex::new(HashMap::new()),
        })
    }

    /// The underlying network.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Shared DSM counters.
    pub fn stats(&self) -> &Arc<DsmStats> {
        &self.stats
    }

    /// The configuration.
    pub fn cfg(&self) -> &DsmConfig {
        &self.cfg
    }

    /// The job id keying this instance's page space (0 = single-job).
    pub fn job(&self) -> u32 {
        self.cfg.job
    }

    /// Simulation SPI: direct access to a process's core (the adaptive
    /// layer uses it to size migration images; a distributed deployment
    /// would message instead).
    pub fn core_of(&self, gpid: Gpid) -> Option<Arc<Mutex<ProcCore>>> {
        self.cores.lock().get(&gpid).cloned()
    }

    /// Start the master process on `host`; returns its control handle.
    /// Call once per system.
    pub fn start_master(self: &Arc<Self>, host: HostId) -> MasterCtl {
        let endpoint = Arc::new(self.net.register(host));
        let gpid = endpoint.gpid();
        let core = Arc::new(Mutex::new(ProcCore::new(
            self.cfg.clone(),
            gpid,
            Arc::clone(&self.stats),
            gpid,
        )));
        self.cores.lock().insert(gpid, Arc::clone(&core));
        let (ctrl_tx, ctrl_rx) = crossbeam_channel::unbounded();
        {
            let ep = Arc::clone(&endpoint);
            let core = Arc::clone(&core);
            let h = std::thread::Builder::new()
                .name(format!("svc-{gpid}"))
                .spawn(move || service_loop(ep, core, ctrl_tx))
                .expect("spawn service thread");
            self.threads.lock().push(h);
        }
        let ctrl = Arc::new(Mutex::new(CtrlBuf::new(ctrl_rx, self.net.clock().clone())));
        let ctx = TmkCtx::new(
            Arc::clone(&core),
            Arc::clone(&endpoint),
            Some(Arc::clone(&ctrl)),
        );
        let spp = self.cfg.slots_per_page();
        // The calling thread *is* the master process's application
        // thread: register it so virtual time holds still while it
        // computes between forks (otherwise a pending grace timer could
        // fire "during" the master's zero-virtual-cost compute).
        let clock_participant = self.net.clock().participant();
        MasterCtl {
            sys: Arc::clone(self),
            endpoint,
            core,
            ctrl,
            ctx,
            allocator: Allocator::new(spp),
            fork_no: 0,
            last_fork_vc: Vc::new(1),
            sent_reg_ver: 0,
            dir: Vec::new(),
            call_timeout: self.cfg.call_timeout,
            _clock_participant: clock_participant,
        }
    }

    /// Spawn a worker (embryo) process on `host`. It greets `hello_to`
    /// (existing processes), announces readiness to `master`, then waits
    /// for `JoinInit` — the asynchronous connection setup of §4.1 that
    /// overlaps the ongoing computation.
    pub fn spawn_worker(self: &Arc<Self>, host: HostId, master: Gpid, hello_to: Vec<Gpid>) -> Gpid {
        let endpoint = Arc::new(self.net.register(host));
        let gpid = endpoint.gpid();
        let core = Arc::new(Mutex::new(ProcCore::new(
            self.cfg.clone(),
            gpid,
            Arc::clone(&self.stats),
            master,
        )));
        self.cores.lock().insert(gpid, Arc::clone(&core));
        let (ctrl_tx, ctrl_rx) = crossbeam_channel::unbounded();
        {
            let ep = Arc::clone(&endpoint);
            let c = Arc::clone(&core);
            let h = std::thread::Builder::new()
                .name(format!("svc-{gpid}"))
                .spawn(move || service_loop(ep, c, ctrl_tx))
                .expect("spawn service thread");
            self.threads.lock().push(h);
        }
        {
            let sys = Arc::clone(self);
            let ep = Arc::clone(&endpoint);
            let h = std::thread::Builder::new()
                .name(format!("app-{gpid}"))
                .spawn(move || worker_main(sys, ep, core, ctrl_rx, master, hello_to))
                .expect("spawn worker thread");
            self.threads.lock().push(h);
        }
        gpid
    }

    /// Wait for every spawned thread to finish (after shutdown).
    pub fn join_threads(&self) {
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Forward an encoded one-way broadcast (`Fork`) to every binomial-tree
/// child of rank `pid` (see [`crate::tree`]), largest subtree first.
/// A child whose endpoint is gone — a relay being dropped or reassigned
/// mid-flight — is *adopted*: the sender takes over that child's own
/// children so the subtree still hears the broadcast (the fork then
/// completes through the ordinary grace-timer/adaptation path for the
/// vanished member). Returns the number of messages actually sent.
pub fn relay_tree_send(endpoint: &Endpoint, team: &Team, pid: Pid, bytes: &bytes::Bytes) -> usize {
    let n = team.nprocs();
    let mut targets = tree::children(pid as usize, n);
    let mut sent = 0;
    let mut i = 0;
    while i < targets.len() {
        let child = targets[i];
        i += 1;
        if endpoint
            .send(team.gpid(child as Pid), bytes.clone())
            .is_ok()
        {
            sent += 1;
        } else {
            // Loud by design: no team member is ever legitimately
            // unregistered mid-fork (leaves commit at adaptation
            // points), so an adoption in the wild is either the
            // dropped-relay race this guards or a protocol bug worth
            // seeing — the flat path would have panicked here.
            eprintln!(
                "[nowmp] fork relay: rank {child} ({}) unreachable; adopting its subtree",
                team.gpid(child as Pid)
            );
            let mut adopted = tree::children(child, n);
            targets.append(&mut adopted);
        }
    }
    sent
}

/// Like [`relay_tree_send`] but request/reply: call every tree child and
/// require an `Ack`, adopting vanished children. Used for the `JoinInit`
/// dissemination at team formation, where each relay acks only after its
/// whole subtree has acked.
fn relay_tree_call(
    endpoint: &Endpoint,
    team: &Team,
    pid: Pid,
    bytes: &bytes::Bytes,
    timeout: Duration,
) -> usize {
    let n = team.nprocs();
    let mut targets = tree::children(pid as usize, n);
    let mut sent = 0;
    let mut i = 0;
    while i < targets.len() {
        let child = targets[i];
        i += 1;
        match endpoint.call_deadline(team.gpid(child as Pid), bytes.clone(), timeout) {
            Ok(rep) => {
                assert_eq!(
                    Msg::from_wire(&rep).expect("malformed JoinInit ack"),
                    Msg::Ack
                );
                sent += 1;
            }
            Err(NetError::Unknown(_)) => {
                let mut adopted = tree::children(child, n);
                targets.append(&mut adopted);
            }
            Err(e) => panic!("JoinInit relay to rank {child} failed: {e}"),
        }
    }
    sent
}

/// Worker-side tree relay for an incoming `Fork`: charge the relay CPU
/// overhead to the clock, forward the received payload verbatim to our
/// subtree, and count the hops.
fn worker_relay_fork(
    sys: &DsmSystem,
    endpoint: &Endpoint,
    core: &Mutex<ProcCore>,
    raw: &bytes::Bytes,
) {
    let (team, my_pid) = {
        let pc = core.lock();
        (pc.team.clone(), pc.my_pid)
    };
    if tree::children(my_pid as usize, team.nprocs()).is_empty() {
        return; // leaf rank: nothing to forward
    }
    let d = endpoint.cost().relay_time();
    if !d.is_zero() {
        endpoint.clock().sleep(d);
    }
    let sent = relay_tree_send(endpoint, &team, my_pid, raw);
    DsmStats::add(&sys.stats.bcast_relays, sent as u64);
}

/// Tree join reduce, worker side: collect the `JoinArrive` aggregates
/// of our whole binomial subtree, merge them into our own arrival
/// (vector-clock merge + record union, deduped by `(pid, seq)`), and
/// forward **one** aggregate to our tree parent. The sender pid of an
/// aggregate identifies the contiguous rank range it covers
/// ([`tree::subtree_size`]), so coverage needs no extra wire fields.
///
/// Child data is buffered here only — never applied to our own core —
/// so per-process DSM state stays byte-identical to the flat collection
/// (the next fork's receiver-independent notice set brings everyone to
/// par exactly as today).
///
/// Vanished-aggregator adoption mirrors [`relay_tree_send`] in both
/// directions: upward, a sender whose parent endpoint is gone escalates
/// to the grandparent (terminating at the master, which is always
/// alive); downward, receiving an aggregate that *skipped* dead
/// intermediate ranks tells us to adopt — we stop waiting for those
/// ranks and re-collect from their escalated orphans (the vanished
/// members themselves resolve through the ordinary grace-timer /
/// urgent-migration path, as on the fork side).
#[allow(clippy::too_many_arguments)]
fn worker_join_reduce(
    sys: &DsmSystem,
    endpoint: &Endpoint,
    ctrl: &Mutex<CtrlBuf>,
    team: &Team,
    epoch: Epoch,
    pid: Pid,
    mut vc: Vc,
    mut records: Vec<Record>,
    wire_enc: Encoding,
    timeout: Duration,
) {
    let n = team.nprocs();
    let my = pid as usize;
    let sub = tree::subtree_size(my, n);
    if sub > 1 {
        // Interior aggregator: wait for our subtree (minus ourselves).
        // `drain_unsent` can hand us records authored by *other* pids
        // (lock transfers), so dedup child aggregates against them.
        let mut seen: HashSet<(Pid, u32)> = records.iter().map(|r| (r.pid, r.seq)).collect();
        let mut remaining: HashSet<usize> = (my + 1..my + sub).collect();
        while !remaining.is_empty() {
            let c = ctrl
                .lock()
                .recv_where(
                    timeout,
                    |c| matches!(&c.msg, Msg::JoinArrive { epoch: e, .. } if *e == epoch),
                )
                .expect("join aggregate lost");
            let Msg::JoinArrive {
                pid: from,
                vc: child_vc,
                records: child_recs,
                ..
            } = c.msg
            else {
                unreachable!()
            };
            let from = from as usize;
            for r in from..from + tree::subtree_size(from, n) {
                remaining.remove(&r);
            }
            // Escalation implies adoption: every tree ancestor of
            // `from` strictly below us was unreachable when it sent
            // (the sender tried each in turn) — stop waiting for them.
            let mut a = tree::parent(from);
            while a != my && a != 0 {
                if remaining.remove(&a) {
                    eprintln!(
                        "[nowmp] join reduce: rank {my} adopts subtree of vanished aggregator {a}"
                    );
                }
                a = tree::parent(a);
            }
            vc.merge(&child_vc);
            for r in child_recs {
                if seen.insert((r.pid, r.seq)) {
                    records.push(r);
                }
            }
            // One inbound stack traversal per absorbed aggregate.
            let d = endpoint.cost().relay_time();
            if !d.is_zero() {
                endpoint.clock().sleep(d);
            }
        }
    }
    let bytes = Msg::JoinArrive {
        epoch,
        pid,
        vc,
        records,
    }
    .to_bytes_compat(wire_enc);
    let mut target = tree::parent(my);
    loop {
        match endpoint.send(team.gpid(target as Pid), bytes.clone()) {
            Ok(()) => break,
            Err(_) if target != 0 => {
                eprintln!(
                    "[nowmp] join reduce: rank {my}'s parent {target} unreachable; escalating"
                );
                target = tree::parent(target);
            }
            Err(e) => panic!("join aggregate from rank {my} to master failed: {e}"),
        }
    }
    if sub > 1 {
        DsmStats::bump(&sys.stats.reduce_relays);
    }
}

/// Worker application thread: connection setup, then the Tmk wait loop.
fn worker_main(
    sys: Arc<DsmSystem>,
    endpoint: Arc<Endpoint>,
    core: Arc<Mutex<ProcCore>>,
    ctrl_rx: crossbeam_channel::Receiver<Ctrl>,
    master: Gpid,
    hello_to: Vec<Gpid>,
) {
    let gpid = endpoint.gpid();
    let timeout = sys.cfg.call_timeout;
    let wire_enc = if sys.cfg.collectives.fork == Broadcast::Flat {
        Encoding::Flat
    } else {
        Encoding::Runs
    };
    // Long-lived simulation thread (see `service_loop`).
    let _clock_participant = endpoint.clock().participant();
    // Connection setup: slaves first, master last (§4.1).
    for peer in &hello_to {
        let _ = endpoint.call_deadline(*peer, Msg::ConnHello { from: gpid }.to_bytes(), timeout);
    }
    let _ = endpoint.send(master, Msg::ReadyJoin { gpid }.to_bytes());

    // Shared with our `TmkCtx`: tree-mode barrier releases (and the
    // join-reduce collection below) are received off the same buffer
    // the wait loop drains.
    let ctrl = Arc::new(Mutex::new(CtrlBuf::new(ctrl_rx, endpoint.clock().clone())));
    let mut ctx = TmkCtx::new(
        Arc::clone(&core),
        Arc::clone(&endpoint),
        Some(Arc::clone(&ctrl)),
    );
    let runner = Arc::clone(&sys.runner);

    loop {
        let c = match ctrl.lock().recv_where(Duration::from_secs(3600), |_| true) {
            Ok(c) => c,
            Err(_) => break, // system torn down
        };
        // Tree dissemination: forward a relayable fork to our subtree
        // *before* touching our own state — the subtree's latency is
        // the broadcast's critical path, our record merge is not.
        if let Msg::Fork { relay: true, .. } = &c.msg {
            worker_relay_fork(&sys, &endpoint, &core, &c.raw);
        }
        match c.msg {
            Msg::JoinInit {
                epoch,
                team,
                dir,
                registry,
                alloc_slots,
                relay,
            } => {
                let my_pid = team
                    .pid_of(gpid)
                    .expect("JoinInit delivered to a non-member");
                {
                    let mut pc = core.lock();
                    pc.registry = Registry::new();
                    pc.registry.merge(&registry);
                    let dirv = dir.to_vec();
                    let spp = pc.cfg.slots_per_page();
                    pc.ensure_pages(
                        dirv.len()
                            .max(nowmp_util::div_ceil(alloc_slots as usize, spp)),
                    );
                    let n = team.members.len();
                    assert_eq!(team.epoch, epoch, "JoinInit team/epoch mismatch");
                    pc.vc = Vc::new(n);
                    pc.my_pid = my_pid;
                    pc.team = team.clone();
                    pc.pages.set_epoch(team.epoch);
                    for (i, owner) in dirv.iter().enumerate() {
                        let mut meta = pc.pages.guard(i as PageId);
                        meta.owner = *owner;
                        meta.shared = true;
                    }
                }
                ctx.sync_reset();
                // Tree team formation: install first, then bring our
                // whole subtree up; our own ack means "subtree ready".
                if relay && !tree::children(my_pid as usize, team.nprocs()).is_empty() {
                    let d = endpoint.cost().relay_time();
                    if !d.is_zero() {
                        endpoint.clock().sleep(d);
                    }
                    // Forward the payload exactly as received — it is
                    // receiver-independent, so no re-encode per hop.
                    let sent = relay_tree_call(&endpoint, &team, my_pid, &c.raw, timeout);
                    DsmStats::add(&sys.stats.bcast_relays, sent as u64);
                }
                if let Some(r) = c.replier {
                    r.reply(Msg::Ack.to_bytes());
                }
            }
            Msg::Fork {
                epoch,
                region,
                params,
                vc,
                records,
                registry_delta,
                alloc_slots,
                piggyback,
                ..
            } => {
                {
                    let mut pc = core.lock();
                    assert_eq!(epoch, pc.epoch(), "Fork from wrong epoch");
                    pc.registry.merge(&registry_delta);
                    let spp = pc.cfg.slots_per_page();
                    pc.ensure_pages(nowmp_util::div_ceil(alloc_slots as usize, spp));
                    pc.apply_records(&records);
                    pc.vc.merge(&vc);
                    // Hot diffs rode the fork (master's own, pid 0):
                    // fully covered pages skip their demand fetch.
                    pc.apply_piggyback(0, &piggyback);
                }
                ctx.sync_reset();
                ctx.set_params(params);
                // Overlap: refetch last region's fault set while the
                // region computes (no-op under the demand data plane).
                ctx.prefetch_after_release();
                runner.run(region, &mut ctx);
                ctx.drain_prefetch();
                // Tmk_join: close, ship our records, return to waiting.
                let (pid, vc, records) = {
                    let mut pc = core.lock();
                    pc.close_interval();
                    (pc.my_pid, pc.vc.clone(), pc.drain_unsent())
                };
                if sys.cfg.collectives.join_reduce == Broadcast::Tree {
                    worker_join_reduce(
                        &sys,
                        &endpoint,
                        &ctrl,
                        ctx.team(),
                        epoch,
                        pid,
                        vc,
                        records,
                        wire_enc,
                        timeout,
                    );
                } else {
                    let _ = endpoint.send(
                        ctx.team().master(),
                        Msg::JoinArrive {
                            epoch,
                            pid,
                            vc,
                            records,
                        }
                        .to_bytes_compat(wire_enc),
                    );
                }
                ctx.sync_reset();
            }
            Msg::GcQuery { epoch } => {
                let report = {
                    let pc = core.lock();
                    assert_eq!(epoch, pc.epoch(), "GcQuery from wrong epoch");
                    pc.gc_report()
                };
                c.replier
                    .expect("GcQuery is a request")
                    .reply(Msg::GcReport { pages: report }.to_bytes());
            }
            Msg::GcFetch { epoch, wants } => {
                {
                    let mut pc = core.lock();
                    assert_eq!(epoch, pc.epoch(), "GcFetch from wrong epoch");
                    pc.gc_prepare_fetch(&wants);
                }
                ctx.sync_reset();
                for (page, _) in &wants {
                    ctx.ensure_page(*page, false);
                    DsmStats::bump(&sys.stats.gc_fetch_pages);
                }
                c.replier
                    .expect("GcFetch is a request")
                    .reply(Msg::Ack.to_bytes());
            }
            Msg::Commit {
                epoch,
                new_epoch,
                team,
                my_pid,
                dir,
                drop_pages,
            } => {
                {
                    let mut pc = core.lock();
                    assert_eq!(epoch, pc.epoch(), "Commit from wrong epoch");
                    pc.gc_commit(new_epoch, team, my_pid, &dir.to_vec(), &drop_pages);
                }
                ctx.sync_reset();
                c.replier
                    .expect("Commit is a request")
                    .reply(Msg::Ack.to_bytes());
            }
            Msg::Terminate => {
                sys.net.unregister(gpid);
                sys.cores.lock().remove(&gpid);
                break;
            }
            other => panic!("worker {gpid} got unexpected control message {other:?}"),
        }
    }
}

/// The master process handle (application thread side).
pub struct MasterCtl {
    sys: Arc<DsmSystem>,
    endpoint: Arc<Endpoint>,
    core: Arc<Mutex<ProcCore>>,
    ctrl: Arc<Mutex<CtrlBuf>>,
    ctx: TmkCtx,
    allocator: Allocator,
    fork_no: u64,
    last_fork_vc: Vc,
    sent_reg_ver: u32,
    /// Authoritative page directory (valid after each GC).
    dir: Vec<Gpid>,
    call_timeout: Duration,
    /// Registers the master's application thread with the simulation
    /// clock for the lifetime of this handle.
    _clock_participant: nowmp_util::ParticipantGuard,
}

/// A checkpointable memory image (serialized by `nowmp-ckpt`).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryImage {
    /// Fork counter at the checkpoint (replay fast-forward index).
    pub fork_no: u64,
    /// Allocator high-water mark.
    pub alloc_slots: Addr,
    /// Full handle registry.
    pub registry: Vec<RegEntry>,
    /// Every shared page's contents.
    pub pages: Vec<(PageId, Vec<u64>)>,
}

impl MasterCtl {
    /// Our gpid.
    pub fn gpid(&self) -> Gpid {
        self.endpoint.gpid()
    }

    /// The system handle.
    pub fn system(&self) -> &Arc<DsmSystem> {
        &self.sys
    }

    /// Mutable DSM context for the sequential phase (and region 0).
    pub fn ctx(&mut self) -> &mut TmkCtx {
        &mut self.ctx
    }

    /// Current team.
    pub fn team(&self) -> Team {
        self.core.lock().team.clone()
    }

    /// Current epoch.
    pub fn epoch(&self) -> Epoch {
        self.core.lock().epoch()
    }

    /// Completed fork count.
    pub fn fork_no(&self) -> u64 {
        self.fork_no
    }

    /// Allocate `len` slots of shared memory and publish under `name`
    /// (the `Tmk_malloc` + registry step; master-only, sequential phase).
    pub fn alloc(&mut self, name: &str, len: u64, kind: crate::msg::ElemKind) -> RegEntry {
        let addr = self.allocator.alloc(len);
        let mut c = self.core.lock();
        c.ensure_pages(self.allocator.allocated_pages());
        c.registry.publish(name, addr, len, kind)
    }

    /// Slots allocated so far.
    pub fn alloc_slots(&self) -> Addr {
        self.allocator.allocated_slots()
    }

    /// Wait for `workers` to finish connection setup, then form the
    /// initial team (epoch 0).
    pub fn init_team(&mut self, workers: &[Gpid]) {
        let mut pending: HashSet<Gpid> = workers.iter().copied().collect();
        while !pending.is_empty() {
            let c = self
                .ctrl
                .lock()
                .recv_where(self.call_timeout, |c| {
                    matches!(c.msg, Msg::ReadyJoin { .. })
                })
                .expect("worker never became ready");
            if let Msg::ReadyJoin { gpid } = c.msg {
                pending.remove(&gpid);
            }
        }
        let mut members = vec![self.gpid()];
        members.extend_from_slice(workers);
        let team = Team::new(0, members);
        self.dir = vec![self.gpid(); self.allocator.allocated_pages()];
        {
            let mut c = self.core.lock();
            c.vc = Vc::new(team.nprocs());
            c.my_pid = 0;
            c.team = team.clone();
            c.pages.set_epoch(team.epoch);
        }
        let (registry, alloc_slots) = {
            (
                self.core.lock().registry.full(),
                self.allocator.allocated_slots(),
            )
        };
        self.sent_reg_ver = registry.iter().map(|e| e.ver).max().unwrap_or(0);
        let tree_mode = self.sys.cfg.collectives.fork == Broadcast::Tree;
        let msg = Msg::JoinInit {
            epoch: 0,
            team: team.clone(),
            dir: DirRle::from_vec(&self.dir),
            registry,
            alloc_slots,
            relay: tree_mode,
        };
        let bytes = msg.to_bytes();
        if tree_mode {
            // O(log n) calls; each child acks once its subtree is up.
            relay_tree_call(&self.endpoint, &team, 0, &bytes, self.call_timeout);
        } else {
            for &w in workers {
                let rep = self
                    .endpoint
                    .call_deadline(w, bytes.clone(), self.call_timeout)
                    .expect("JoinInit failed");
                assert_eq!(Msg::from_wire(&rep).unwrap(), Msg::Ack);
            }
        }
        self.last_fork_vc = Vc::new(team.nprocs());
        self.ctx.sync_reset();
    }

    /// Execute one parallel construct: `Tmk_fork`, run our share (pid
    /// 0), `Tmk_join`. Returns when every process has joined.
    pub fn parallel(&mut self, region: u32, params: &[u8]) {
        self.ctx.throttle();
        let (team, epoch) = {
            let mut c = self.core.lock();
            c.close_interval();
            c.drain_unsent(); // distributed via fork records below
            (c.team.clone(), c.epoch())
        };
        let n = team.nprocs();
        let (vc, records, reg_delta, alloc_slots) = {
            let c = self.core.lock();
            (
                c.vc.clone(),
                c.records.newer_than(&self.last_fork_vc),
                c.registry.delta_since(self.sent_reg_ver),
                self.allocator.allocated_slots(),
            )
        };
        let tree_mode = self.sys.cfg.collectives.fork == Broadcast::Tree;
        let dataplane = self.sys.cfg.dataplane;
        let piggyback = if dataplane.piggybacks() {
            self.core.lock().piggyback_diffs(dataplane.piggyback_budget)
        } else {
            Vec::new()
        };
        let pb_bytes: usize = piggyback.iter().map(|(_, _, d)| 8 + d.wire_bytes()).sum();
        DsmStats::add(&self.sys.stats.piggyback_bytes, pb_bytes as u64);
        let msg = Msg::Fork {
            epoch,
            fork_no: self.fork_no,
            region,
            params: params.to_vec(),
            vc: vc.clone(),
            records,
            registry_delta: reg_delta.clone(),
            alloc_slots,
            relay: tree_mode,
            piggyback,
        };
        // The payload is receiver-independent: encode once for all
        // slaves instead of re-serializing per destination. Flat mode
        // keeps the 1999 flat-notice payload sizes (see `Broadcast`).
        let bytes = msg.to_bytes_compat(if tree_mode {
            Encoding::Runs
        } else {
            Encoding::Flat
        });
        if tree_mode {
            relay_tree_send(&self.endpoint, &team, 0, &bytes);
        } else {
            for pid in 1..n {
                self.endpoint
                    .send(team.gpid(pid as Pid), bytes.clone())
                    .expect("slave vanished at fork");
            }
        }
        self.sent_reg_ver = self
            .sent_reg_ver
            .max(reg_delta.iter().map(|e| e.ver).max().unwrap_or(0));
        self.last_fork_vc = vc;
        DsmStats::bump(&self.sys.stats.forks);

        // Run our own share.
        self.ctx.sync_reset();
        self.ctx.set_params(params.to_vec());
        self.ctx.prefetch_after_release();
        let runner = Arc::clone(&self.sys.runner);
        runner.run(region, &mut self.ctx);
        self.ctx.drain_prefetch();

        // Join: close our interval, then collect all slaves. Under the
        // tree join reduce each arrival is an *aggregate* covering the
        // sender's whole binomial subtree (plus any orphans that
        // escalated past a vanished aggregator), so collection is by
        // rank coverage rather than by count.
        {
            let mut c = self.core.lock();
            c.close_interval();
            c.drain_unsent();
        }
        let reduce_tree = self.sys.cfg.collectives.join_reduce == Broadcast::Tree;
        let mut remaining: HashSet<usize> = (1..n).collect();
        while !remaining.is_empty() {
            let c = self
                .ctrl
                .lock()
                .recv_where(
                    self.call_timeout,
                    |c| matches!(&c.msg, Msg::JoinArrive { epoch: e, .. } if *e == epoch),
                )
                .expect("join arrival lost");
            if let Msg::JoinArrive {
                pid, vc, records, ..
            } = c.msg
            {
                let from = pid as usize;
                if reduce_tree {
                    for r in from..from + tree::subtree_size(from, n) {
                        remaining.remove(&r);
                    }
                    // Adoption at the root: an aggregate that skipped
                    // dead intermediate ranks ends their wait too.
                    let mut a = tree::parent(from);
                    while a != 0 {
                        remaining.remove(&a);
                        a = tree::parent(a);
                    }
                } else {
                    remaining.remove(&from);
                }
                let mut pc = self.core.lock();
                pc.apply_records(&records);
                pc.vc.merge(&vc);
            }
        }
        self.fork_no += 1;
        self.ctx.sync_reset();
    }

    /// Does accumulated consistency data call for a GC?
    pub fn gc_due(&self) -> bool {
        self.core.lock().gc_due()
    }

    /// Drain `ReadyJoin` announcements that arrived since the last
    /// check (non-blocking). The adaptive layer calls this at each
    /// adaptation point to learn which spawned processes finished their
    /// connection setup.
    pub fn drain_ready_joins(&mut self) -> Vec<Gpid> {
        self.ctrl
            .lock()
            .drain_where(|c| matches!(c.msg, Msg::ReadyJoin { .. }))
            .into_iter()
            .map(|c| match c.msg {
                Msg::ReadyJoin { gpid } => gpid,
                _ => unreachable!("drain_where filtered ReadyJoin"),
            })
            .collect()
    }

    /// Block until a specific spawned process announces readiness.
    pub fn wait_ready(&mut self, gpid: Gpid) {
        self.ctrl
            .lock()
            .recv_where(
                self.call_timeout,
                |c| matches!(c.msg, Msg::ReadyJoin { gpid: g } if g == gpid),
            )
            .expect("spawned process never became ready");
    }

    fn call_msg(&self, dst: Gpid, msg: &Msg) -> Msg {
        let rep = self
            .endpoint
            .call_deadline(dst, msg.to_bytes(), self.call_timeout)
            .unwrap_or_else(|e| panic!("master call to {dst} failed: {e}"));
        Msg::from_wire(&rep).expect("malformed reply to master")
    }

    /// Run a garbage collection round (queries, plan, completion
    /// fetches). Must be called at an adaptation point (all slaves
    /// waiting). `avoid` are processes that may own nothing afterwards;
    /// `scatter` picks the leaver-page sink.
    pub fn run_gc(&mut self, avoid: &HashSet<Gpid>, scatter: Option<&[Gpid]>) -> GcOutcome {
        let (team, epoch) = {
            let mut c = self.core.lock();
            c.close_interval();
            c.drain_unsent();
            (c.team.clone(), c.epoch())
        };
        // Step 1: gather reports.
        let mut reports = vec![(self.gpid(), self.core.lock().gc_report())];
        for pid in 1..team.nprocs() {
            let g = team.gpid(pid as Pid);
            match self.call_msg(g, &Msg::GcQuery { epoch }) {
                Msg::GcReport { pages } => reports.push((g, pages)),
                other => panic!("unexpected GC report: {other:?}"),
            }
        }
        // Step 2: plan.
        let total = self
            .allocator
            .allocated_pages()
            .max(self.dir.len())
            .max(self.core.lock().pages.len());
        let writes = page_writes(&self.core.lock().records);
        let sink = match scatter {
            Some(survivors) => LeaveSink::Scatter(survivors),
            None => LeaveSink::ViaMaster,
        };
        let plan: GcPlan = compute_gc_plan(
            total,
            &writes,
            &reports,
            &self.dir,
            avoid,
            self.gpid(),
            sink,
        );
        // Step 3: completion fetches (slaves first, then our own).
        let mut fetch_pages: HashMap<Gpid, usize> = HashMap::new();
        for (g, wants) in &plan.fetches {
            fetch_pages.insert(*g, wants.len());
            if *g == self.gpid() {
                {
                    let mut c = self.core.lock();
                    c.gc_prepare_fetch(wants);
                }
                self.ctx.sync_reset();
                for (page, _) in wants {
                    self.ctx.ensure_page(*page, false);
                    DsmStats::bump(&self.sys.stats.gc_fetch_pages);
                }
            } else {
                match self.call_msg(
                    *g,
                    &Msg::GcFetch {
                        epoch,
                        wants: wants.clone(),
                    },
                ) {
                    Msg::Ack => {}
                    other => panic!("unexpected GcFetch reply: {other:?}"),
                }
            }
        }
        self.dir = plan.dir.clone();
        GcOutcome {
            dir: plan.dir,
            complete: plan.complete,
            drops: plan.drops,
            fetch_pages,
        }
    }

    /// Commit a new team after [`Self::run_gc`]: survivors get
    /// `Commit`, joiners get `JoinInit`, leavers get `Terminate`.
    /// `new_members[0]` must be the master.
    pub fn commit_team(&mut self, new_members: Vec<Gpid>, outcome: &GcOutcome) {
        assert_eq!(new_members[0], self.gpid(), "master must stay pid 0");
        let (old_team, epoch) = {
            let c = self.core.lock();
            (c.team.clone(), c.epoch())
        };
        let new_epoch = epoch + 1;
        let team = Team::new(new_epoch, new_members.clone());
        let dir_rle = DirRle::from_vec(&outcome.dir);
        let empty: Vec<PageId> = Vec::new();

        let old_set: HashSet<Gpid> = old_team.members.iter().copied().collect();
        // Survivors: in both teams (skip ourselves).
        for &g in &new_members {
            if g == self.gpid() || !old_set.contains(&g) {
                continue;
            }
            let my_pid = team.pid_of(g).expect("survivor is in new team");
            let msg = Msg::Commit {
                epoch,
                new_epoch,
                team: team.clone(),
                my_pid,
                dir: dir_rle.clone(),
                drop_pages: outcome.drops.get(&g).unwrap_or(&empty).clone(),
            };
            match self.call_msg(g, &msg) {
                Msg::Ack => {}
                other => panic!("unexpected Commit reply: {other:?}"),
            }
        }
        // Joiners: in the new team but not the old.
        let (registry, alloc_slots) = {
            (
                self.core.lock().registry.full(),
                self.allocator.allocated_slots(),
            )
        };
        for &g in &new_members {
            if g == self.gpid() || old_set.contains(&g) {
                continue;
            }
            debug_assert!(team.pid_of(g).is_some(), "joiner is in new team");
            // Joiners are few and scattered among survivors (who get
            // `Commit`, not `JoinInit`), so this stays a direct send:
            // a tree relay over the mixed team would misdeliver.
            let msg = Msg::JoinInit {
                epoch: new_epoch,
                team: team.clone(),
                dir: dir_rle.clone(),
                registry: registry.clone(),
                alloc_slots,
                relay: false,
            };
            match self.call_msg(g, &msg) {
                Msg::Ack => {}
                other => panic!("unexpected JoinInit reply: {other:?}"),
            }
        }
        // Ourselves.
        {
            let mut c = self.core.lock();
            let drops = outcome.drops.get(&self.gpid()).cloned().unwrap_or_default();
            c.gc_commit(new_epoch, team.clone(), 0, &outcome.dir, &drops);
        }
        // Leavers: in the old team but not the new.
        let new_set: HashSet<Gpid> = new_members.iter().copied().collect();
        for &g in &old_team.members {
            if !new_set.contains(&g) {
                let _ = self.endpoint.send(g, Msg::Terminate.to_bytes());
            }
        }
        self.last_fork_vc = Vc::new(team.nprocs());
        self.ctx.sync_reset();
    }

    /// Number of team members whose gpid appears as sole complete
    /// holder — diagnostic for leave-cost analysis.
    pub fn sole_holder_pages(outcome: &GcOutcome, g: Gpid) -> usize {
        outcome
            .complete
            .iter()
            .filter(|c| c.len() == 1 && c[0] == g)
            .count()
    }

    /// Bring every allocated page into the master's memory (checkpoint
    /// step 2: "the master collects all pages for which it does not
    /// have a valid copy").
    pub fn collect_all_pages(&mut self) {
        let total = self.allocator.allocated_pages();
        self.ctx.sync_reset();
        for p in 0..total as PageId {
            self.ctx.ensure_page(p, false);
        }
    }

    /// Export the full memory image (after [`Self::collect_all_pages`]).
    pub fn export_image(&self) -> MemoryImage {
        let c = self.core.lock();
        MemoryImage {
            fork_no: self.fork_no,
            alloc_slots: self.allocator.allocated_slots(),
            registry: c.registry.full(),
            pages: c.export_pages(),
        }
    }

    /// Restore a memory image into a *fresh* master (recovery).
    pub fn import_image(&mut self, image: &MemoryImage) {
        {
            let mut c = self.core.lock();
            c.registry = Registry::new();
            c.registry.merge(&image.registry);
            let spp = c.cfg.slots_per_page();
            c.ensure_pages(nowmp_util::div_ceil(image.alloc_slots as usize, spp));
            c.import_pages(&image.pages);
        }
        self.allocator.restore(image.alloc_slots);
        self.fork_no = image.fork_no;
        self.sent_reg_ver = 0;
        self.dir = vec![self.gpid(); self.allocator.allocated_pages()];
        self.ctx.sync_reset();
    }

    /// Estimated process-image size of `gpid` in bytes (valid pages +
    /// metadata), for migration cost accounting.
    pub fn resident_image_bytes(&self, gpid: Gpid) -> usize {
        let Some(core) = self.sys.core_of(gpid) else {
            return 0;
        };
        let c = core.lock();
        let page_bytes: usize = c.pages.count(|m| m.data.is_some()) * c.cfg.page_size;
        // Stack + heap metadata estimate (libckpt also writes those).
        page_bytes + 256 * 1024
    }

    /// Count of the master's currently valid pages (diagnostics).
    pub fn master_valid_pages(&self) -> usize {
        self.core
            .lock()
            .pages
            .count(|m| m.state != PageState::Invalid)
    }

    /// Gracefully shut the system down: terminate every slave, then
    /// unregister ourselves.
    pub fn shutdown(self) {
        let team = self.core.lock().team.clone();
        for pid in 1..team.nprocs() {
            let _ = self
                .endpoint
                .send(team.gpid(pid as Pid), Msg::Terminate.to_bytes());
        }
        self.sys.net.unregister(self.gpid());
        self.sys.cores.lock().remove(&self.gpid());
        self.sys.join_threads();
    }

    /// The master's own drained records plus current knowledge — used
    /// by tests asserting distribution invariants.
    pub fn knowledge(&self) -> (Vc, Vec<Record>) {
        let c = self.core.lock();
        (c.vc.clone(), c.records.all().to_vec())
    }
}
