//! The per-process **service thread** — TreadMarks' SIGIO handler.
//!
//! Every process runs one service thread that owns the endpoint's
//! receive side. Protocol requests (pages, diffs, records, locks) are
//! answered inline, under short critical sections on the shared
//! [`ProcCore`]; *control* messages (forks, joins, GC steps, adaptation
//! commits) are forwarded to the application thread through the control
//! channel, preserving their [`nowmp_net::Replier`] so the application
//! thread can acknowledge them when it is ready.

use crate::core::{LockGrant, LockWaiter, ProcCore};
use crate::msg::Msg;
use nowmp_net::{Endpoint, Gpid, Replier};
use nowmp_util::wire::{Encoding, Wire};
use parking_lot::Mutex;
use std::sync::Arc;

/// A control message forwarded to the application thread.
pub struct Ctrl {
    /// The decoded message.
    pub msg: Msg,
    /// The encoded payload exactly as received. Tree relays forward
    /// this verbatim (`Fork`/`JoinInit` payloads are
    /// receiver-independent), avoiding a re-encode per hop.
    pub raw: bytes::Bytes,
    /// The sender.
    pub src: Gpid,
    /// Reply handle when the sender awaits an acknowledgement.
    pub replier: Option<Replier>,
}

/// Messages drained per wakeup: enough to amortize the sleep/wake and
/// dispatch across a fork-time or barrier-time burst, small enough to
/// keep reply latency for the first request low.
const SERVICE_BURST: usize = 16;

/// Run the service loop until the endpoint disconnects.
///
/// Panics on malformed messages or protocol violations — this is a
/// research system reproduction; loud failure beats silent corruption.
pub fn service_loop(
    endpoint: Arc<Endpoint>,
    core: Arc<Mutex<ProcCore>>,
    ctrl_tx: crossbeam_channel::Sender<Ctrl>,
) {
    // Long-lived simulation thread: register with the clock so virtual
    // time holds still while a request is being served.
    let clock = endpoint.clock().clone();
    let _participant = clock.participant();
    // The page table outlives every epoch; grabbing it once up front
    // lets the steady-state `PageReq` path below serve from a shard
    // lock without ever touching the core mutex.
    let table = Arc::clone(&core.lock().pages);
    let mut burst: Vec<nowmp_net::Incoming> = Vec::with_capacity(SERVICE_BURST);
    loop {
        burst.clear();
        if endpoint.recv_burst(SERVICE_BURST, &mut burst).is_err() {
            break;
        }
        for inc in burst.drain(..) {
            serve_one(inc, &core, &table, &ctrl_tx, &clock);
        }
    }
}

/// Handle one incoming message (request answered inline, control
/// forwarded to the application thread).
fn serve_one(
    inc: nowmp_net::Incoming,
    core: &Arc<Mutex<ProcCore>>,
    table: &crate::table::PageTable,
    ctrl_tx: &crossbeam_channel::Sender<Ctrl>,
    clock: &nowmp_util::Clock,
) {
    let msg = match Msg::from_wire(&inc.payload) {
        Ok(m) => m,
        Err(e) => panic!("malformed message from {}: {e}", inc.src),
    };
    if msg.is_control() {
        // Forward to the application thread; if it has exited (post
        // Terminate), drop silently — late control traffic is
        // possible during teardown. The hop to the control channel
        // keeps the message accounted as in-flight.
        clock.msg_sent();
        let sent = ctrl_tx
            .send(Ctrl {
                msg,
                raw: inc.payload,
                src: inc.src,
                replier: inc.replier,
            })
            .is_ok();
        if !sent {
            clock.msg_received();
        }
        return;
    }
    match msg {
        Msg::ConnHello { .. } => {
            if let Some(r) = inc.replier {
                r.reply(Msg::Ack.to_bytes());
            }
        }
        Msg::PageReq { epoch, page } => {
            // Steady-state fast path: an already-shared page with a
            // local copy serves from its shard lock alone, concurrent
            // with whatever the application thread is doing to *other*
            // pages under the core mutex. Transitions (exclusive →
            // shared, zero-page conjuring, redirects) fall back to the
            // core-locked slow path.
            let rep = table.serve_shared_fast(page, epoch).unwrap_or_else(|| {
                let mut c = core.lock();
                debug_assert_eq!(epoch, c.epoch(), "PageReq from wrong epoch");
                c.serve_page(page)
            });
            inc.replier
                .expect("PageReq is a request")
                .reply(rep.to_bytes());
        }
        Msg::DiffReq { epoch, wants } => {
            let rep = {
                let mut c = core.lock();
                debug_assert_eq!(epoch, c.epoch(), "DiffReq from wrong epoch");
                c.serve_diffs(&wants)
            };
            inc.replier
                .expect("DiffReq is a request")
                .reply(rep.to_bytes());
        }
        Msg::RecordsReq { epoch, vc } => {
            let (rep, enc) = {
                let c = core.lock();
                debug_assert_eq!(epoch, c.epoch(), "RecordsReq from wrong epoch");
                let enc = if c.cfg.collectives.fork == crate::config::Broadcast::Flat {
                    Encoding::Flat
                } else {
                    Encoding::Runs
                };
                (c.serve_records(&vc), enc)
            };
            inc.replier
                .expect("RecordsReq is a request")
                .reply(rep.to_bytes_compat(enc));
        }
        Msg::LockReq { epoch, lock } => {
            let replier = inc.replier.expect("LockReq is a request");
            let grant = {
                let mut c = core.lock();
                debug_assert_eq!(epoch, c.epoch(), "LockReq from wrong epoch");
                c.lock_acquire(lock, inc.src, LockWaiter::Remote(replier))
            };
            deliver_grant(grant, clock);
        }
        Msg::LockRelease { epoch, lock } => {
            let grant = {
                let mut c = core.lock();
                debug_assert_eq!(epoch, c.epoch(), "LockRelease from wrong epoch");
                c.lock_release(lock)
            };
            deliver_grant(grant, clock);
        }
        other => panic!("service thread received non-request message {other:?}"),
    }
}

/// Dispatch a lock grant decided by the manager state machine. Local
/// grants travel over a channel, so they are accounted as in-flight on
/// `clock` until the waiting application thread picks them up.
pub fn deliver_grant(grant: Option<LockGrant>, clock: &nowmp_util::Clock) {
    match grant {
        None => {}
        Some(LockGrant::Remote(replier, prev)) => {
            replier.reply(Msg::LockRep { prev }.to_bytes());
        }
        Some(LockGrant::Local(tx, prev)) => {
            // The local application thread is blocked on this channel.
            clock.msg_sent();
            if tx.send(prev).is_err() {
                clock.msg_received();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DsmConfig;
    use crate::stats::DsmStats;
    use nowmp_net::{HostId, NetModel, Network};

    fn spawn_proc(
        net: &Network,
        host: u16,
    ) -> (
        Arc<Endpoint>,
        Arc<Mutex<ProcCore>>,
        crossbeam_channel::Receiver<Ctrl>,
        Gpid,
    ) {
        let ep = Arc::new(net.register(HostId(host)));
        let gpid = ep.gpid();
        let core = Arc::new(Mutex::new(ProcCore::new(
            DsmConfig {
                page_size: 64,
                ..DsmConfig::test_small()
            },
            gpid,
            DsmStats::new_shared(),
            gpid,
        )));
        let (tx, rx) = crossbeam_channel::unbounded();
        {
            let ep = Arc::clone(&ep);
            let core = Arc::clone(&core);
            std::thread::spawn(move || service_loop(ep, core, tx));
        }
        (ep, core, rx, gpid)
    }

    #[test]
    fn page_request_served_while_idle() {
        let net = Network::new(2, 1, NetModel::disabled());
        let (_ep_a, core_a, _rx_a, gpid_a) = spawn_proc(&net, 0);
        let (ep_b, _core_b, _rx_b, _gpid_b) = spawn_proc(&net, 1);

        // A materializes and writes a page locally.
        {
            let mut c = core_a.lock();
            let crate::core::AccessPlan::Ready { buf, .. } = c.plan_access(0, true) else {
                panic!()
            };
            buf.store(2, 1234);
        }
        // B fetches it through the wire.
        let rep = ep_b
            .call(gpid_a, Msg::PageReq { epoch: 0, page: 0 }.to_bytes())
            .unwrap();
        let Msg::PageRep {
            words, redirect, ..
        } = Msg::from_wire(&rep).unwrap()
        else {
            panic!()
        };
        assert!(redirect.is_none());
        assert_eq!(words[2], 1234);
        // A's page is now shared and twinned (it was exclusive-dirty).
        let c = core_a.lock();
        assert!(c.pages.guard(0).shared);
        assert!(c.pages.guard(0).twin.is_some());
    }

    #[test]
    fn shared_page_served_while_core_mutex_is_held() {
        // The whole point of the sharded page table: a PageReq for an
        // already-shared page is answered from its shard lock even
        // while the application thread sits inside a long core-mutex
        // critical section.
        let net = Network::new(2, 1, NetModel::disabled());
        let (_ep_a, core_a, _rx_a, gpid_a) = spawn_proc(&net, 0);
        let (ep_b, _core_b, _rx_b, _g) = spawn_proc(&net, 1);

        // Materialize + write page 0 on A, then serve once so it is
        // shared (the exclusive→shared transition needs the core).
        {
            let mut c = core_a.lock();
            let crate::core::AccessPlan::Ready { buf, .. } = c.plan_access(0, true) else {
                panic!()
            };
            buf.store(0, 77);
            let _ = c.serve_page(0);
        }
        // One round trip proves A's service loop is up (it snapshots
        // the table handle at startup, under a brief core lock).
        let _ = ep_b
            .call(gpid_a, Msg::PageReq { epoch: 0, page: 0 }.to_bytes())
            .unwrap();

        // Now hold A's core mutex hostage and fetch again.
        let hostage = core_a.lock();
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Arc::clone(&done);
        let fetch = std::thread::spawn(move || {
            let rep = ep_b
                .call(gpid_a, Msg::PageReq { epoch: 0, page: 0 }.to_bytes())
                .unwrap();
            flag.store(true, std::sync::atomic::Ordering::SeqCst);
            rep
        });
        let fast = nowmp_util::wait_for(std::time::Duration::from_secs(5), || {
            done.load(std::sync::atomic::Ordering::SeqCst)
        });
        drop(hostage);
        let rep = fetch.join().unwrap();
        assert!(fast, "PageReq for a shared page blocked on the core mutex");
        let Msg::PageRep {
            words, redirect, ..
        } = Msg::from_wire(&rep).unwrap()
        else {
            panic!()
        };
        assert!(redirect.is_none());
        assert_eq!(words[0], 77);
    }

    #[test]
    fn control_messages_reach_app_thread() {
        let net = Network::new(2, 1, NetModel::disabled());
        let (_ep_a, _core_a, rx_a, gpid_a) = spawn_proc(&net, 0);
        let (ep_b, _core_b, _rx_b, gpid_b) = spawn_proc(&net, 1);

        ep_b.send(gpid_a, Msg::ReadyJoin { gpid: gpid_b }.to_bytes())
            .unwrap();
        let ctrl = rx_a
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        assert!(matches!(ctrl.msg, Msg::ReadyJoin { .. }));
        assert_eq!(ctrl.src, gpid_b);
        assert!(ctrl.replier.is_none());
    }

    #[test]
    fn remote_lock_protocol() {
        let net = Network::new(2, 1, NetModel::disabled());
        let (_ep_mgr, core_mgr, _rx, mgr_gpid) = spawn_proc(&net, 0);
        let (ep_b, _core_b, _rx_b, _g) = spawn_proc(&net, 1);

        // First acquire: immediate grant, no previous holder.
        let rep = ep_b
            .call(mgr_gpid, Msg::LockReq { epoch: 0, lock: 3 }.to_bytes())
            .unwrap();
        assert_eq!(Msg::from_wire(&rep).unwrap(), Msg::LockRep { prev: None });

        // Contended acquire from another proc: grant arrives only after release.
        let net2 = net.clone();
        let waiter = std::thread::spawn(move || {
            let ep_c = net2.register(HostId(1));
            let rep = ep_c
                .call(mgr_gpid, Msg::LockReq { epoch: 0, lock: 3 }.to_bytes())
                .unwrap();
            Msg::from_wire(&rep).unwrap()
        });
        // Condition wait: release only once the contending request is
        // provably queued at the manager.
        assert!(
            nowmp_util::wait_for(std::time::Duration::from_secs(5), || core_mgr
                .lock()
                .lock_waiters(3)
                == 1),
            "contending LockReq never queued at the manager"
        );
        ep_b.send(mgr_gpid, Msg::LockRelease { epoch: 0, lock: 3 }.to_bytes())
            .unwrap();
        let granted = waiter.join().unwrap();
        match granted {
            Msg::LockRep { prev } => assert_eq!(prev, Some(ep_b.gpid())),
            other => panic!("expected LockRep, got {other:?}"),
        }
    }

    #[test]
    fn records_request_served() {
        let net = Network::new(2, 1, NetModel::disabled());
        let (_ep_a, core_a, _rx_a, gpid_a) = spawn_proc(&net, 0);
        let (ep_b, _core_b, _rx_b, _g) = spawn_proc(&net, 1);

        {
            let mut c = core_a.lock();
            c.team = crate::types::Team::new(0, vec![gpid_a, ep_b.gpid()]);
            c.vc = crate::types::Vc::new(2);
            let _ = c.plan_access(0, false);
            let _ = c.serve_page(0); // shared
            let crate::core::AccessPlan::Ready { buf, .. } = c.plan_access(0, true) else {
                panic!()
            };
            buf.store(0, 9);
            c.close_interval().unwrap();
        }
        let rep = ep_b
            .call(
                gpid_a,
                Msg::RecordsReq {
                    epoch: 0,
                    vc: crate::types::Vc::new(2),
                }
                .to_bytes(),
            )
            .unwrap();
        let Msg::RecordsRep { records } = Msg::from_wire(&rep).unwrap() else {
            panic!()
        };
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].pages, vec![0]);
    }
}
