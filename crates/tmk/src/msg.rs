//! Protocol messages.
//!
//! Every message crossing the simulated network is one [`Msg`], encoded
//! with the hand-rolled wire codec (realistic sizes feed the traffic
//! statistics that Tables 1–2 and §5.4 are built on).
//!
//! Requests served by the *service thread* (the SIGIO-handler analog)
//! can be answered at any time, even while the peer's application
//! thread computes: `ConnHello`, `PageReq`, `DiffReq`, `RecordsReq`,
//! `LockReq`, `LockRelease`.
//!
//! *Control* messages are forwarded by the service thread to the
//! application thread: `Fork`, `JoinArrive`, `BarrierArrive`,
//! `BarrierRelease`, the GC
//! sequence, `Commit`/`JoinInit`, `ReadyJoin`, `Terminate`.

use crate::diff::Diff;
use crate::page::Wn;
use crate::records::{Record, RecordSet};
use crate::types::{Addr, Epoch, PageId, Pid, Seq, Vc};
use nowmp_net::Gpid;
use nowmp_util::wire::{Dec, Enc, Encoding, Wire, WireError};

/// Shared-array element kinds carried in the handle registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemKind {
    /// IEEE-754 double stored in one slot.
    F64 = 0,
    /// Unsigned 64-bit integer in one slot.
    U64 = 1,
    /// Signed 64-bit integer in one slot.
    I64 = 2,
}

impl ElemKind {
    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(ElemKind::F64),
            1 => Ok(ElemKind::U64),
            2 => Ok(ElemKind::I64),
            t => Err(WireError::BadTag {
                what: "ElemKind",
                tag: t as u32,
            }),
        }
    }
}

/// A published shared allocation: name → (address, length, kind).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegEntry {
    /// Registry key used by application code.
    pub name: String,
    /// First slot of the allocation (page-aligned).
    pub addr: Addr,
    /// Length in slots.
    pub len: u64,
    /// Element kind (documentation/type-check aid).
    pub kind: ElemKind,
    /// Registry version at publication (for delta distribution).
    pub ver: u32,
}

impl Wire for RegEntry {
    fn enc(&self, e: &mut Enc) {
        e.put_str(&self.name);
        e.put_u64(self.addr);
        e.put_u64(self.len);
        e.put_u8(self.kind as u8);
        e.put_u32(self.ver);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(RegEntry {
            name: d.get_str()?.to_owned(),
            addr: d.get_u64()?,
            len: d.get_u64()?,
            kind: ElemKind::from_u8(d.get_u8()?)?,
            ver: d.get_u32()?,
        })
    }
}

/// Run-length-encoded page directory: who owns each page after a GC.
///
/// "It suffices for the master to send the joining process a message
/// describing where an up-to-date copy of every shared memory page is
/// located" — this is that message's payload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirRle {
    /// `(run_length, owner)` pairs covering pages `0..total`.
    pub runs: Vec<(u32, Gpid)>,
}

impl DirRle {
    /// Encode a full directory.
    pub fn from_vec(dir: &[Gpid]) -> Self {
        let mut runs: Vec<(u32, Gpid)> = Vec::new();
        for &g in dir {
            match runs.last_mut() {
                Some((n, last)) if *last == g => *n += 1,
                _ => runs.push((1, g)),
            }
        }
        DirRle { runs }
    }

    /// Expand to one owner per page.
    pub fn to_vec(&self) -> Vec<Gpid> {
        let mut v = Vec::new();
        for &(n, g) in &self.runs {
            v.extend(std::iter::repeat_n(g, n as usize));
        }
        v
    }

    /// Total pages covered.
    pub fn total(&self) -> usize {
        self.runs.iter().map(|&(n, _)| n as usize).sum()
    }
}

impl Wire for DirRle {
    fn enc(&self, e: &mut Enc) {
        e.put_u32(self.runs.len() as u32);
        for &(n, g) in &self.runs {
            e.put_u32(n);
            g.enc(e);
        }
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let n = d.get_u32()? as usize;
        if n > 1 << 24 {
            return Err(WireError::BadLength {
                what: "DirRle",
                len: n,
            });
        }
        let mut runs = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let c = d.get_u32()?;
            let g = Gpid::dec(d)?;
            runs.push((c, g));
        }
        Ok(DirRle { runs })
    }
}

impl Wire for Wn {
    fn enc(&self, e: &mut Enc) {
        e.put_u16(self.pid);
        e.put_u32(self.seq);
        e.put_u64(self.vcsum);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(Wn {
            pid: d.get_u16()?,
            seq: d.get_u32()?,
            vcsum: d.get_u64()?,
        })
    }
}

/// A page's sparse applied-clock summary in a GC report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageApplied {
    /// The page.
    pub page: PageId,
    /// Non-zero `(pid, seq)` entries of the local copy's applied clock.
    pub applied: Vec<(Pid, Seq)>,
}

impl Wire for PageApplied {
    fn enc(&self, e: &mut Enc) {
        e.put_u32(self.page);
        e.put_u32(self.applied.len() as u32);
        for &(p, s) in &self.applied {
            e.put_u16(p);
            e.put_u32(s);
        }
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let page = d.get_u32()?;
        let n = d.get_u32()? as usize;
        if n > 1 << 20 {
            return Err(WireError::BadLength {
                what: "PageApplied",
                len: n,
            });
        }
        let mut applied = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            applied.push((d.get_u16()?, d.get_u32()?));
        }
        Ok(PageApplied { page, applied })
    }
}

/// Every message of the DSM + adaptation protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    // ---- service-handled requests ----
    /// New process introducing itself ("asynchronously sets up network
    /// connections first to all other slave processes, then to the
    /// master").
    ConnHello {
        /// Sender's gpid.
        from: Gpid,
    },
    /// Full-page fetch.
    PageReq {
        /// Protocol epoch of the requester.
        epoch: Epoch,
        /// Page wanted.
        page: PageId,
    },
    /// Fetch diffs the target created: `(page, seq)` pairs.
    DiffReq {
        /// Protocol epoch.
        epoch: Epoch,
        /// Diff keys wanted from this creator.
        wants: Vec<(PageId, Seq)>,
    },
    /// Fetch interval records unknown to the holder of `vc` (lock
    /// acquire consistency data).
    RecordsReq {
        /// Protocol epoch.
        epoch: Epoch,
        /// Requester's vector clock.
        vc: Vc,
    },
    /// Lock acquire request, sent to the lock's manager.
    LockReq {
        /// Protocol epoch.
        epoch: Epoch,
        /// Lock id.
        lock: u32,
    },
    /// Lock release notice, sent to the lock's manager (one-way).
    LockRelease {
        /// Protocol epoch.
        epoch: Epoch,
        /// Lock id.
        lock: u32,
    },

    // ---- replies ----
    /// Generic acknowledgement.
    Ack,
    /// Full-page reply.
    PageRep {
        /// Sparse applied clock of the served copy.
        applied: Vec<(Pid, Seq)>,
        /// Page contents (word-atomic snapshot); empty on redirect.
        words: Vec<u64>,
        /// Set when the responder has no copy: try this process.
        redirect: Option<Gpid>,
    },
    /// Diff reply: `(page, seq, diff)` triples.
    DiffRep {
        /// The requested diffs in request order.
        diffs: Vec<(PageId, Seq, Diff)>,
    },
    /// Interval records reply.
    RecordsRep {
        /// Records the requester had not seen.
        records: Vec<Record>,
    },
    /// Lock grant: fetch consistency records from `prev` (if any) before
    /// entering the critical section.
    LockRep {
        /// The previous holder (None: first acquisition).
        prev: Option<Gpid>,
    },

    // ---- control (application thread) ----
    /// Master → slave: execute a parallel region (the `Tmk_fork`).
    Fork {
        /// Protocol epoch.
        epoch: Epoch,
        /// Running fork counter (diagnostics, checkpoint replay).
        fork_no: u64,
        /// Region id to run (application's outlined procedure).
        region: u32,
        /// Opaque region parameters.
        params: Vec<u8>,
        /// Global vector clock after the master's merge.
        vc: Vc,
        /// Records this slave has not seen.
        records: Vec<Record>,
        /// New registry entries since the last fork this slave saw.
        registry_delta: Vec<RegEntry>,
        /// Slots allocated so far (keeps the slave's page table sized).
        alloc_slots: Addr,
        /// Tree dissemination: the receiver must forward this fork to
        /// its binomial-tree children (see [`crate::tree`]) before
        /// running the region. The payload is receiver-independent, so
        /// relays forward it verbatim.
        relay: bool,
        /// Piggybacked hot diffs of the master's own newest intervals
        /// (`(page, seq, diff)`, budget-bounded; empty under the
        /// demand data plane — and then absent from the wire, keeping
        /// the 1999 payload byte-identical). Receiver-independent:
        /// relays forward it verbatim; receivers apply only entries
        /// matching their unapplied write notices.
        piggyback: Vec<(PageId, Seq, Diff)>,
    },
    /// Slave → master: finished the region (the `Tmk_join`), one-way.
    JoinArrive {
        /// Protocol epoch.
        epoch: Epoch,
        /// Arriving pid.
        pid: Pid,
        /// Arriving vector clock.
        vc: Vc,
        /// Records created since last contact with the master.
        records: Vec<Record>,
    },
    /// In-region barrier arrival (request; reply is `BarrierRep`).
    BarrierArrive {
        /// Protocol epoch.
        epoch: Epoch,
        /// Arriving pid.
        pid: Pid,
        /// Arriving vector clock.
        vc: Vc,
        /// Records created since the last sync with the manager.
        records: Vec<Record>,
    },
    /// Barrier release (flat mode: the reply to `BarrierArrive`).
    BarrierRep {
        /// Merged global clock.
        vc: Vc,
        /// Records the receiver had not seen.
        records: Vec<Record>,
    },
    /// Receiver-independent barrier release, relayed down the binomial
    /// tree by interior ranks (one-way control message; the flat mode
    /// keeps the per-receiver `BarrierRep` reply instead). Carries
    /// everything any arrival might lack — record application dedups
    /// over-delivery.
    BarrierRelease {
        /// Merged global clock.
        vc: Vc,
        /// Records newer than the pointwise-min arrival clock.
        records: Vec<Record>,
        /// Piggybacked hot diffs of the manager's own newest intervals
        /// (see [`Msg::Fork::piggyback`]; empty = absent on the wire).
        piggyback: Vec<(PageId, Seq, Diff)>,
    },
    /// Master → slave: report per-page applied clocks (GC step 1).
    GcQuery {
        /// Protocol epoch.
        epoch: Epoch,
    },
    /// Slave → master: the report.
    GcReport {
        /// Applied summaries for every page with a local copy.
        pages: Vec<PageApplied>,
    },
    /// Master → slave: complete these pages by fetching the named diffs
    /// (GC step 2); reply `Ack` when done.
    GcFetch {
        /// Protocol epoch.
        epoch: Epoch,
        /// `(page, missing write notices)` to pull before commit.
        wants: Vec<(PageId, Vec<Wn>)>,
    },
    /// Master → all: finish GC / adaptation: install new epoch, team,
    /// directory; drop listed incomplete copies; reply `Ack`.
    Commit {
        /// Epoch being left.
        epoch: Epoch,
        /// New epoch (== old + 1).
        new_epoch: Epoch,
        /// New team (possibly identical).
        team: crate::types::Team,
        /// Receiver's pid in the new team.
        my_pid: Pid,
        /// Full page directory after GC.
        dir: DirRle,
        /// Pages whose local copy is incomplete and must be dropped.
        drop_pages: Vec<PageId>,
    },
    /// Master → embryo: full state for a process joining the
    /// computation (or initial team formation); reply `Ack`. The
    /// receiver derives its pid from `team` (its own gpid's rank), so
    /// the payload is receiver-independent and tree-relayable.
    JoinInit {
        /// Epoch the joiner enters at.
        epoch: Epoch,
        /// The team.
        team: crate::types::Team,
        /// Full page directory.
        dir: DirRle,
        /// Complete handle registry.
        registry: Vec<RegEntry>,
        /// Slots allocated so far.
        alloc_slots: Addr,
        /// Tree dissemination (initial team formation): relay to our
        /// binomial-tree children and ack only once they have acked.
        relay: bool,
    },
    /// Embryo → master: connections set up, ready to join (one-way).
    /// "When the master receives this connection request, it knows that
    /// the new process has set up all its other connections."
    ReadyJoin {
        /// The embryo's gpid.
        gpid: Gpid,
    },
    /// Master → slave: leave the computation (one-way; the process
    /// exits its wait loop and its endpoint is unregistered).
    Terminate,
}

mod tags {
    pub const CONN_HELLO: u8 = 1;
    pub const PAGE_REQ: u8 = 2;
    pub const DIFF_REQ: u8 = 3;
    pub const RECORDS_REQ: u8 = 4;
    pub const LOCK_REQ: u8 = 5;
    pub const LOCK_RELEASE: u8 = 6;
    pub const ACK: u8 = 7;
    pub const PAGE_REP: u8 = 8;
    pub const DIFF_REP: u8 = 9;
    pub const RECORDS_REP: u8 = 10;
    pub const LOCK_REP: u8 = 11;
    pub const FORK: u8 = 12;
    pub const JOIN_ARRIVE: u8 = 13;
    pub const BARRIER_ARRIVE: u8 = 14;
    pub const BARRIER_REP: u8 = 15;
    pub const GC_QUERY: u8 = 16;
    pub const GC_REPORT: u8 = 17;
    pub const GC_FETCH: u8 = 18;
    pub const COMMIT: u8 = 19;
    pub const JOIN_INIT: u8 = 20;
    pub const READY_JOIN: u8 = 21;
    pub const TERMINATE: u8 = 22;
    pub const BARRIER_RELEASE: u8 = 23;
}

/// Encode a piggyback section as an *optional trailing field*: emitted
/// only when non-empty, so demand-data-plane payloads stay
/// byte-identical to the pre-piggyback wire (the Table 1/2 calibration
/// assumption).
fn enc_piggyback(pb: &[(PageId, Seq, Diff)], e: &mut Enc) {
    if pb.is_empty() {
        return;
    }
    e.put_u32(pb.len() as u32);
    for (p, s, diff) in pb {
        e.put_u32(*p);
        e.put_u32(*s);
        diff.enc(e);
    }
}

/// Decode an optional trailing piggyback section (absent = empty).
fn dec_piggyback(d: &mut Dec<'_>) -> Result<Vec<(PageId, Seq, Diff)>, WireError> {
    if d.is_done() {
        return Ok(Vec::new());
    }
    let n = d.get_u32()? as usize;
    if n > 1 << 22 {
        return Err(WireError::BadLength {
            what: "piggyback",
            len: n,
        });
    }
    let mut pb = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        pb.push((d.get_u32()?, d.get_u32()?, Diff::dec(d)?));
    }
    Ok(pb)
}

impl Wire for Msg {
    fn enc(&self, e: &mut Enc) {
        use tags::*;
        match self {
            Msg::ConnHello { from } => {
                e.put_u8(CONN_HELLO);
                from.enc(e);
            }
            Msg::PageReq { epoch, page } => {
                e.put_u8(PAGE_REQ);
                e.put_u32(*epoch);
                e.put_u32(*page);
            }
            Msg::DiffReq { epoch, wants } => {
                e.put_u8(DIFF_REQ);
                e.put_u32(*epoch);
                e.put_u32(wants.len() as u32);
                for &(p, s) in wants {
                    e.put_u32(p);
                    e.put_u32(s);
                }
            }
            Msg::RecordsReq { epoch, vc } => {
                e.put_u8(RECORDS_REQ);
                e.put_u32(*epoch);
                vc.enc(e);
            }
            Msg::LockReq { epoch, lock } => {
                e.put_u8(LOCK_REQ);
                e.put_u32(*epoch);
                e.put_u32(*lock);
            }
            Msg::LockRelease { epoch, lock } => {
                e.put_u8(LOCK_RELEASE);
                e.put_u32(*epoch);
                e.put_u32(*lock);
            }
            Msg::Ack => e.put_u8(ACK),
            Msg::PageRep {
                applied,
                words,
                redirect,
            } => {
                e.put_u8(PAGE_REP);
                e.put_u32(applied.len() as u32);
                for &(p, s) in applied {
                    e.put_u16(p);
                    e.put_u32(s);
                }
                e.put_u64_slice(words);
                redirect.enc(e);
            }
            Msg::DiffRep { diffs } => {
                e.put_u8(DIFF_REP);
                e.put_u32(diffs.len() as u32);
                for (p, s, diff) in diffs {
                    e.put_u32(*p);
                    e.put_u32(*s);
                    diff.enc(e);
                }
            }
            Msg::RecordsRep { records } => {
                e.put_u8(RECORDS_REP);
                RecordSet::enc_slice(records, e);
            }
            Msg::LockRep { prev } => {
                e.put_u8(LOCK_REP);
                prev.enc(e);
            }
            Msg::Fork {
                epoch,
                fork_no,
                region,
                params,
                vc,
                records,
                registry_delta,
                alloc_slots,
                relay,
                piggyback,
            } => {
                e.put_u8(FORK);
                e.put_u32(*epoch);
                e.put_u64(*fork_no);
                e.put_u32(*region);
                e.put_bytes(params);
                vc.enc(e);
                RecordSet::enc_slice(records, e);
                e.put_seq(registry_delta);
                e.put_u64(*alloc_slots);
                e.put_bool(*relay);
                enc_piggyback(piggyback, e);
            }
            Msg::JoinArrive {
                epoch,
                pid,
                vc,
                records,
            } => {
                e.put_u8(JOIN_ARRIVE);
                e.put_u32(*epoch);
                e.put_u16(*pid);
                vc.enc(e);
                RecordSet::enc_slice(records, e);
            }
            Msg::BarrierArrive {
                epoch,
                pid,
                vc,
                records,
            } => {
                e.put_u8(BARRIER_ARRIVE);
                e.put_u32(*epoch);
                e.put_u16(*pid);
                vc.enc(e);
                RecordSet::enc_slice(records, e);
            }
            Msg::BarrierRep { vc, records } => {
                e.put_u8(BARRIER_REP);
                vc.enc(e);
                RecordSet::enc_slice(records, e);
            }
            Msg::BarrierRelease {
                vc,
                records,
                piggyback,
            } => {
                e.put_u8(BARRIER_RELEASE);
                vc.enc(e);
                RecordSet::enc_slice(records, e);
                enc_piggyback(piggyback, e);
            }
            Msg::GcQuery { epoch } => {
                e.put_u8(GC_QUERY);
                e.put_u32(*epoch);
            }
            Msg::GcReport { pages } => {
                e.put_u8(GC_REPORT);
                e.put_seq(pages);
            }
            Msg::GcFetch { epoch, wants } => {
                e.put_u8(GC_FETCH);
                e.put_u32(*epoch);
                e.put_u32(wants.len() as u32);
                for (p, wns) in wants {
                    e.put_u32(*p);
                    e.put_seq(wns);
                }
            }
            Msg::Commit {
                epoch,
                new_epoch,
                team,
                my_pid,
                dir,
                drop_pages,
            } => {
                e.put_u8(COMMIT);
                e.put_u32(*epoch);
                e.put_u32(*new_epoch);
                team.enc(e);
                e.put_u16(*my_pid);
                dir.enc(e);
                e.put_u32_slice(drop_pages);
            }
            Msg::JoinInit {
                epoch,
                team,
                dir,
                registry,
                alloc_slots,
                relay,
            } => {
                e.put_u8(JOIN_INIT);
                e.put_u32(*epoch);
                team.enc(e);
                dir.enc(e);
                e.put_seq(registry);
                e.put_u64(*alloc_slots);
                e.put_bool(*relay);
            }
            Msg::ReadyJoin { gpid } => {
                e.put_u8(READY_JOIN);
                gpid.enc(e);
            }
            Msg::Terminate => e.put_u8(TERMINATE),
        }
    }

    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        use tags::*;
        let tag = d.get_u8()?;
        Ok(match tag {
            CONN_HELLO => Msg::ConnHello {
                from: Gpid::dec(d)?,
            },
            PAGE_REQ => Msg::PageReq {
                epoch: d.get_u32()?,
                page: d.get_u32()?,
            },
            DIFF_REQ => {
                let epoch = d.get_u32()?;
                let n = d.get_u32()? as usize;
                if n > 1 << 22 {
                    return Err(WireError::BadLength {
                        what: "DiffReq",
                        len: n,
                    });
                }
                let mut wants = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    wants.push((d.get_u32()?, d.get_u32()?));
                }
                Msg::DiffReq { epoch, wants }
            }
            RECORDS_REQ => Msg::RecordsReq {
                epoch: d.get_u32()?,
                vc: Vc::dec(d)?,
            },
            LOCK_REQ => Msg::LockReq {
                epoch: d.get_u32()?,
                lock: d.get_u32()?,
            },
            LOCK_RELEASE => Msg::LockRelease {
                epoch: d.get_u32()?,
                lock: d.get_u32()?,
            },
            ACK => Msg::Ack,
            PAGE_REP => {
                let n = d.get_u32()? as usize;
                if n > 1 << 20 {
                    return Err(WireError::BadLength {
                        what: "PageRep applied",
                        len: n,
                    });
                }
                let mut applied = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    applied.push((d.get_u16()?, d.get_u32()?));
                }
                let words = d.get_u64_vec()?;
                let redirect = Option::<Gpid>::dec(d)?;
                Msg::PageRep {
                    applied,
                    words,
                    redirect,
                }
            }
            DIFF_REP => {
                let n = d.get_u32()? as usize;
                if n > 1 << 22 {
                    return Err(WireError::BadLength {
                        what: "DiffRep",
                        len: n,
                    });
                }
                let mut diffs = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    diffs.push((d.get_u32()?, d.get_u32()?, Diff::dec(d)?));
                }
                Msg::DiffRep { diffs }
            }
            RECORDS_REP => Msg::RecordsRep {
                records: RecordSet::dec_vec(d)?,
            },
            LOCK_REP => Msg::LockRep {
                prev: Option::<Gpid>::dec(d)?,
            },
            FORK => Msg::Fork {
                epoch: d.get_u32()?,
                fork_no: d.get_u64()?,
                region: d.get_u32()?,
                params: d.get_bytes()?.to_vec(),
                vc: Vc::dec(d)?,
                records: RecordSet::dec_vec(d)?,
                registry_delta: d.get_seq()?,
                alloc_slots: d.get_u64()?,
                relay: d.get_bool()?,
                piggyback: dec_piggyback(d)?,
            },
            JOIN_ARRIVE => Msg::JoinArrive {
                epoch: d.get_u32()?,
                pid: d.get_u16()?,
                vc: Vc::dec(d)?,
                records: RecordSet::dec_vec(d)?,
            },
            BARRIER_ARRIVE => Msg::BarrierArrive {
                epoch: d.get_u32()?,
                pid: d.get_u16()?,
                vc: Vc::dec(d)?,
                records: RecordSet::dec_vec(d)?,
            },
            BARRIER_REP => Msg::BarrierRep {
                vc: Vc::dec(d)?,
                records: RecordSet::dec_vec(d)?,
            },
            BARRIER_RELEASE => Msg::BarrierRelease {
                vc: Vc::dec(d)?,
                records: RecordSet::dec_vec(d)?,
                piggyback: dec_piggyback(d)?,
            },
            GC_QUERY => Msg::GcQuery {
                epoch: d.get_u32()?,
            },
            GC_REPORT => Msg::GcReport {
                pages: d.get_seq()?,
            },
            GC_FETCH => {
                let epoch = d.get_u32()?;
                let n = d.get_u32()? as usize;
                if n > 1 << 22 {
                    return Err(WireError::BadLength {
                        what: "GcFetch",
                        len: n,
                    });
                }
                let mut wants = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let p = d.get_u32()?;
                    let wns = d.get_seq()?;
                    wants.push((p, wns));
                }
                Msg::GcFetch { epoch, wants }
            }
            COMMIT => Msg::Commit {
                epoch: d.get_u32()?,
                new_epoch: d.get_u32()?,
                team: crate::types::Team::dec(d)?,
                my_pid: d.get_u16()?,
                dir: DirRle::dec(d)?,
                drop_pages: d.get_u32_vec()?,
            },
            JOIN_INIT => Msg::JoinInit {
                epoch: d.get_u32()?,
                team: crate::types::Team::dec(d)?,
                dir: DirRle::dec(d)?,
                registry: d.get_seq()?,
                alloc_slots: d.get_u64()?,
                relay: d.get_bool()?,
            },
            READY_JOIN => Msg::ReadyJoin {
                gpid: Gpid::dec(d)?,
            },
            TERMINATE => Msg::Terminate,
            t => {
                return Err(WireError::BadTag {
                    what: "Msg",
                    tag: t as u32,
                })
            }
        })
    }
}

impl Msg {
    /// Encode to bytes ready for the transport (compact wire forms).
    pub fn to_bytes(&self) -> bytes::Bytes {
        self.to_bytes_compat(Encoding::Runs)
    }

    /// Encode with an explicit wire [`Encoding`]: [`Encoding::Flat`]
    /// emits the pre-compaction flat page-set notices (what
    /// [`crate::config::Broadcast::Flat`] systems put on the wire, so
    /// the 1999-faithful reproduction keeps its calibrated payload
    /// sizes). Decoders accept both forms.
    pub fn to_bytes_compat(&self, encoding: Encoding) -> bytes::Bytes {
        let mut e = Enc::with_encoding(64, encoding);
        self.enc(&mut e);
        e.finish_bytes()
    }

    /// True when the service thread must forward this to the
    /// application thread instead of handling it inline.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Msg::Fork { .. }
                | Msg::JoinArrive { .. }
                | Msg::BarrierArrive { .. }
                | Msg::BarrierRelease { .. }
                | Msg::GcQuery { .. }
                | Msg::GcFetch { .. }
                | Msg::Commit { .. }
                | Msg::JoinInit { .. }
                | Msg::ReadyJoin { .. }
                | Msg::Terminate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Team;

    fn roundtrip(m: &Msg) {
        let b = m.to_bytes();
        let back = Msg::from_wire(&b).unwrap();
        assert_eq!(*m, back);
    }

    #[test]
    fn all_variants_roundtrip() {
        let mut vc = Vc::new(3);
        vc.set(1, 4);
        let rec = Record {
            pid: 1,
            seq: 4,
            vc: vc.clone(),
            pages: vec![3, 9],
        };
        let team = Team::new(2, vec![Gpid(1), Gpid(5)]);
        let dir = DirRle::from_vec(&[Gpid(1), Gpid(1), Gpid(5)]);
        let cases = vec![
            Msg::ConnHello { from: Gpid(9) },
            Msg::PageReq { epoch: 1, page: 7 },
            Msg::DiffReq {
                epoch: 1,
                wants: vec![(7, 2), (8, 1)],
            },
            Msg::RecordsReq {
                epoch: 1,
                vc: vc.clone(),
            },
            Msg::LockReq { epoch: 1, lock: 3 },
            Msg::LockRelease { epoch: 1, lock: 3 },
            Msg::Ack,
            Msg::PageRep {
                applied: vec![(0, 2), (1, 4)],
                words: vec![1, 2, 3],
                redirect: None,
            },
            Msg::PageRep {
                applied: vec![],
                words: vec![],
                redirect: Some(Gpid(4)),
            },
            Msg::DiffRep {
                diffs: vec![(7, 2, Diff::of_run(1, &[42]))],
            },
            Msg::RecordsRep {
                records: vec![rec.clone()],
            },
            Msg::LockRep {
                prev: Some(Gpid(2)),
            },
            Msg::Fork {
                epoch: 1,
                fork_no: 10,
                region: 2,
                params: vec![1, 2, 3],
                vc: vc.clone(),
                records: vec![rec.clone()],
                registry_delta: vec![RegEntry {
                    name: "grid".into(),
                    addr: 512,
                    len: 100,
                    kind: ElemKind::F64,
                    ver: 1,
                }],
                alloc_slots: 1024,
                relay: true,
                piggyback: vec![],
            },
            Msg::Fork {
                epoch: 1,
                fork_no: 11,
                region: 2,
                params: vec![],
                vc: vc.clone(),
                records: vec![rec.clone()],
                registry_delta: vec![],
                alloc_slots: 1024,
                relay: true,
                piggyback: vec![(3, 4, Diff::of_run(0, &[7, 8]))],
            },
            Msg::JoinArrive {
                epoch: 1,
                pid: 2,
                vc: vc.clone(),
                records: vec![],
            },
            Msg::BarrierArrive {
                epoch: 1,
                pid: 2,
                vc: vc.clone(),
                records: vec![rec.clone()],
            },
            Msg::BarrierRep {
                vc: vc.clone(),
                records: vec![rec.clone()],
            },
            Msg::BarrierRelease {
                vc: vc.clone(),
                records: vec![rec.clone()],
                piggyback: vec![],
            },
            Msg::BarrierRelease {
                vc: vc.clone(),
                records: vec![rec.clone()],
                piggyback: vec![(9, 4, Diff::of_run(2, &[1]))],
            },
            Msg::GcQuery { epoch: 1 },
            Msg::GcReport {
                pages: vec![PageApplied {
                    page: 3,
                    applied: vec![(0, 1)],
                }],
            },
            Msg::GcFetch {
                epoch: 1,
                wants: vec![(
                    3,
                    vec![Wn {
                        pid: 0,
                        seq: 1,
                        vcsum: 1,
                    }],
                )],
            },
            Msg::Commit {
                epoch: 1,
                new_epoch: 2,
                team: team.clone(),
                my_pid: 1,
                dir: dir.clone(),
                drop_pages: vec![4, 5],
            },
            Msg::JoinInit {
                epoch: 2,
                team,
                dir,
                registry: vec![],
                alloc_slots: 2048,
                relay: true,
            },
            Msg::ReadyJoin { gpid: Gpid(7) },
            Msg::Terminate,
        ];
        for m in &cases {
            roundtrip(m);
        }
    }

    #[test]
    fn control_classification() {
        assert!(Msg::Terminate.is_control());
        assert!(Msg::GcQuery { epoch: 0 }.is_control());
        assert!(Msg::BarrierRelease {
            vc: Vc::new(1),
            records: vec![],
            piggyback: vec![],
        }
        .is_control());
        assert!(!Msg::PageReq { epoch: 0, page: 0 }.is_control());
        assert!(!Msg::LockReq { epoch: 0, lock: 0 }.is_control());
    }

    #[test]
    fn empty_piggyback_is_byte_identical_to_the_legacy_wire() {
        // The piggyback section is an optional trailing field: when
        // empty it must add zero bytes, so demand-data-plane payloads
        // match the pre-piggyback (1999-calibrated) encoding exactly.
        let mut vc = Vc::new(2);
        vc.set(0, 3);
        let rec = Record {
            pid: 0,
            seq: 3,
            vc: vc.clone(),
            pages: vec![1, 2],
        };
        for enc_kind in [Encoding::Flat, Encoding::Runs] {
            let msg = Msg::BarrierRelease {
                vc: vc.clone(),
                records: vec![rec.clone()],
                piggyback: vec![],
            };
            let mut legacy = Enc::with_encoding(64, enc_kind);
            legacy.put_u8(tags::BARRIER_RELEASE);
            vc.enc(&mut legacy);
            RecordSet::enc_slice(std::slice::from_ref(&rec), &mut legacy);
            assert_eq!(
                &msg.to_bytes_compat(enc_kind)[..],
                &legacy.finish()[..],
                "empty piggyback must not change the wire under {enc_kind:?}"
            );
        }
    }

    #[test]
    fn dir_rle_roundtrip() {
        let dir = vec![Gpid(1); 100]
            .into_iter()
            .chain(vec![Gpid(2); 50])
            .chain(vec![Gpid(1); 3])
            .collect::<Vec<_>>();
        let rle = DirRle::from_vec(&dir);
        assert_eq!(rle.runs.len(), 3);
        assert_eq!(rle.to_vec(), dir);
        assert_eq!(rle.total(), 153);
    }

    #[test]
    fn dir_rle_empty() {
        let rle = DirRle::from_vec(&[]);
        assert!(rle.to_vec().is_empty());
        assert_eq!(rle.total(), 0);
    }

    #[test]
    fn garbage_rejected() {
        assert!(Msg::from_wire(&[200, 1, 2]).is_err());
        assert!(Msg::from_wire(&[]).is_err());
    }
}
