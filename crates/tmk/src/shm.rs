//! Shared-memory allocation and the handle registry.
//!
//! As in TreadMarks, only the master allocates shared memory
//! (`Tmk_malloc`), during sequential phases. Allocations are
//! page-aligned — scientific arrays must not share pages with unrelated
//! data, or false sharing inflates diff traffic for no reason (the
//! paper's applications allocate their arrays the same way).
//!
//! The registry maps application-chosen names to allocations so that
//! worker processes (including ones that *join years into the run*) can
//! locate arrays without any application-level bootstrapping: the
//! registry rides along in `Fork` deltas and `JoinInit` messages.

use crate::msg::{ElemKind, RegEntry};
use crate::types::{Addr, PageId};
use nowmp_util::div_ceil;
use std::collections::HashMap;

/// Bump allocator over the global slot space (master-side authority).
#[derive(Debug)]
pub struct Allocator {
    slots_per_page: usize,
    next_slot: Addr,
}

impl Allocator {
    /// Allocator for a page size of `slots_per_page` slots.
    pub fn new(slots_per_page: usize) -> Self {
        Allocator {
            slots_per_page,
            next_slot: 0,
        }
    }

    /// Allocate `len` slots, page-aligned; returns the base address.
    pub fn alloc(&mut self, len: u64) -> Addr {
        let spp = self.slots_per_page as u64;
        let base = self.next_slot.div_ceil(spp) * spp;
        self.next_slot = base + len.max(1);
        base
    }

    /// Total slots allocated (high-water mark).
    pub fn allocated_slots(&self) -> Addr {
        self.next_slot
    }

    /// Number of pages backing the allocations so far.
    pub fn allocated_pages(&self) -> usize {
        div_ceil(self.next_slot as usize, self.slots_per_page)
    }

    /// Restore allocator state (checkpoint recovery).
    pub fn restore(&mut self, next_slot: Addr) {
        self.next_slot = next_slot;
    }
}

/// Versioned name → allocation registry.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Vec<RegEntry>,
    by_name: HashMap<String, usize>,
    version: u32,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish an allocation under `name`. Panics on duplicate names
    /// (application bug).
    pub fn publish(&mut self, name: &str, addr: Addr, len: u64, kind: ElemKind) -> RegEntry {
        assert!(
            !self.by_name.contains_key(name),
            "registry name {name:?} already published"
        );
        self.version += 1;
        let entry = RegEntry {
            name: name.to_owned(),
            addr,
            len,
            kind,
            ver: self.version,
        };
        self.by_name.insert(name.to_owned(), self.entries.len());
        self.entries.push(entry.clone());
        entry
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Option<&RegEntry> {
        self.by_name.get(name).map(|&i| &self.entries[i])
    }

    /// Current version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Entries newer than `since` (fork delta payload).
    pub fn delta_since(&self, since: u32) -> Vec<RegEntry> {
        self.entries
            .iter()
            .filter(|e| e.ver > since)
            .cloned()
            .collect()
    }

    /// All entries (join payload).
    pub fn full(&self) -> Vec<RegEntry> {
        self.entries.clone()
    }

    /// Merge received entries (worker side); newer versions win, the
    /// version counter follows the maximum seen.
    pub fn merge(&mut self, entries: &[RegEntry]) {
        for e in entries {
            if let Some(&i) = self.by_name.get(&e.name) {
                if self.entries[i].ver < e.ver {
                    self.entries[i] = e.clone();
                }
            } else {
                self.by_name.insert(e.name.clone(), self.entries.len());
                self.entries.push(e.clone());
            }
            if e.ver > self.version {
                self.version = e.ver;
            }
        }
    }
}

/// Page range `[first, last]` covered by a slot range.
pub fn pages_of(addr: Addr, len: u64, slots_per_page: usize) -> (PageId, PageId) {
    let spp = slots_per_page as u64;
    let first = (addr / spp) as PageId;
    let last = ((addr + len.max(1) - 1) / spp) as PageId;
    (first, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_page_aligned() {
        let mut a = Allocator::new(32);
        let x = a.alloc(10);
        let y = a.alloc(40);
        let z = a.alloc(1);
        assert_eq!(x, 0);
        assert_eq!(y, 32, "second allocation starts on the next page");
        assert_eq!(z, 96, "40 slots span 2 pages; next page is 3rd");
        assert_eq!(a.allocated_pages(), 4);
    }

    #[test]
    fn alloc_zero_len_still_advances() {
        let mut a = Allocator::new(32);
        let x = a.alloc(0);
        let y = a.alloc(1);
        assert_eq!(x, 0);
        assert_eq!(y, 32);
    }

    #[test]
    fn registry_publish_get_delta() {
        let mut r = Registry::new();
        let e1 = r.publish("grid", 0, 100, ElemKind::F64);
        let e2 = r.publish("tmp", 128, 100, ElemKind::F64);
        assert_eq!(e1.ver, 1);
        assert_eq!(e2.ver, 2);
        assert_eq!(r.get("grid").unwrap().addr, 0);
        assert!(r.get("nope").is_none());
        assert_eq!(r.delta_since(1).len(), 1);
        assert_eq!(r.delta_since(0).len(), 2);
        assert_eq!(r.full().len(), 2);
    }

    #[test]
    #[should_panic(expected = "already published")]
    fn duplicate_name_panics() {
        let mut r = Registry::new();
        r.publish("x", 0, 1, ElemKind::U64);
        r.publish("x", 32, 1, ElemKind::U64);
    }

    #[test]
    fn merge_applies_newer() {
        let mut master = Registry::new();
        master.publish("a", 0, 1, ElemKind::F64);
        master.publish("b", 32, 1, ElemKind::F64);

        let mut worker = Registry::new();
        worker.merge(&master.delta_since(0));
        assert_eq!(worker.get("a").unwrap().addr, 0);
        assert_eq!(worker.version(), 2);

        master.publish("c", 64, 1, ElemKind::F64);
        worker.merge(&master.delta_since(worker.version()));
        assert_eq!(worker.get("c").unwrap().addr, 64);
        assert_eq!(worker.full().len(), 3);
    }

    #[test]
    fn pages_of_ranges() {
        assert_eq!(pages_of(0, 32, 32), (0, 0));
        assert_eq!(pages_of(0, 33, 32), (0, 1));
        assert_eq!(pages_of(32, 1, 32), (1, 1));
        assert_eq!(pages_of(31, 2, 32), (0, 1));
        assert_eq!(pages_of(64, 0, 32), (2, 2));
    }
}
