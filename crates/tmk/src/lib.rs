//! # nowmp-tmk — a TreadMarks-like software distributed shared memory
//!
//! Reimplementation (in shape, from scratch) of the DSM substrate the
//! PPoPP'99 paper builds on: **lazy release consistency** with a
//! **multiple-writer protocol** — twins, word-granularity diffs, write
//! notices, vector timestamps, intervals — plus distributed locks,
//! barriers, the fork-join primitives (`Tmk_wait`/`Tmk_fork`/
//! `Tmk_join`) and the **garbage collection** of consistency metadata
//! that the adaptive system leans on.
//!
//! ## Architecture
//!
//! ```text
//!   application thread                service thread (SIGIO analog)
//!   ──────────────────                ─────────────────────────────
//!   TmkCtx: typed access,   ┌──────┐  serves PageReq / DiffReq /
//!   fault driver, locks,  ⇄ │ Proc │⇄ RecordsReq / LockReq at any
//!   barriers, intervals     │ Core │  time; forwards control msgs
//!                           └──────┘
//!            │                            │
//!            └────── nowmp-net simulated switched Ethernet ─────┘
//! ```
//!
//! Per-word atomic page storage substitutes for mmap/SIGSEGV access
//! detection (see DESIGN.md §3): the fast path is a software page-table
//! check; the slow path is the LRC protocol.
//!
//! ## Entry points
//!
//! * [`system::DsmSystem`] — bring up processes over a network;
//! * [`system::MasterCtl`] — master handle: `alloc`, `parallel`
//!   (fork-join), and the adaptation SPI (`run_gc`, `commit_team`,
//!   checkpoint images);
//! * [`ctx::TmkCtx`] — what application region code programs against;
//! * [`shared`] — typed shared arrays.

#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod ctx;
pub mod diff;
pub mod engine;
pub mod gc;
pub mod msg;
pub mod page;
pub mod records;
pub mod service;
pub mod shared;
pub mod shm;
pub mod stats;
pub mod system;
pub mod table;
pub mod tree;
pub mod types;

pub use config::{Broadcast, CollectiveConfig, DataPlaneConfig, DsmConfig};
pub use ctx::TmkCtx;
pub use engine::{HostState, RegionTask, SimMemory, Step, StepOutcome, TaskCtx};
pub use msg::ElemKind;
pub use shared::{SharedF64Mat, SharedF64Vec, SharedU64Vec};
pub use stats::{DsmSnapshot, DsmStats};
pub use system::{DsmSystem, GcOutcome, MasterCtl, MemoryImage, RegionRunner};
pub use table::{PageGuard, PageTable};
pub use types::{Addr, Epoch, PageId, Pid, Seq, Team, Vc};
