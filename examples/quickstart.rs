//! Quickstart: a parallel AXPY on a simulated network of workstations.
//!
//! Shows the whole programming model in ~60 lines:
//!
//! 1. register the outlined parallel regions (what the OpenMP compiler
//!    would generate from `#pragma omp parallel for`);
//! 2. bring up a cluster (here: 4 workstations, 4 processes);
//! 3. allocate shared arrays, run parallel constructs, read results.
//!
//! Run with: `cargo run --release --example quickstart`

use nowmp_core::ClusterConfig;
use nowmp_omp::{OmpProgram, OmpSystem, Params};

fn main() {
    let n = 10_000u64;

    // The "compiled" program: each region re-derives its iteration
    // share from (pid, nprocs) at every fork — that is what makes the
    // same binary run on any team size, and adapt when the team changes.
    let program = OmpProgram::new()
        .region("init", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let x = ctx.f64vec("x");
            let y = ctx.f64vec("y");
            ctx.for_static(0..n, |c, i| {
                x.set(c.dsm(), i as usize, i as f64);
                y.set(c.dsm(), i as usize, 1.0);
            });
        })
        .region("axpy", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let a = p.f64();
            let x = ctx.f64vec("x");
            let y = ctx.f64vec("y");
            ctx.for_static(0..n, |c, i| {
                let v = a * x.get(c.dsm(), i as usize) + y.get(c.dsm(), i as usize);
                y.set(c.dsm(), i as usize, v);
            });
        })
        .region("sum", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let y = ctx.f64vec("y");
            let out = ctx.f64vec("out");
            let mut local = 0.0;
            ctx.for_static(0..n, |c, i| local += y.get(c.dsm(), i as usize));
            let total = ctx.reduce_sum_f64(local); // reduction(+: total)
            ctx.master(|c| out.set(c.dsm(), 0, total));
        });

    // 4 workstations, one DSM process each.
    let mut sys = OmpSystem::new(ClusterConfig::test(4, 4), program);
    sys.alloc_f64("x", n);
    sys.alloc_f64("y", n);
    sys.alloc_f64("out", 1);

    sys.parallel("init", &Params::new().u64(n).build());
    sys.parallel("axpy", &Params::new().u64(n).f64(2.0).build());
    sys.parallel("sum", &Params::new().u64(n).build());

    let total = sys.seq(|ctx| {
        let out = ctx.f64vec("out");
        out.get(ctx.dsm(), 0)
    });
    let expect: f64 = (0..n).map(|i| 2.0 * i as f64 + 1.0).sum();
    println!(
        "sum(2*x + 1) over {n} elements on {} processes = {total}",
        sys.nprocs()
    );
    assert_eq!(total, expect, "distributed result must match");
    println!(
        "network traffic: {} messages, {}",
        sys.net_stats().total_msgs,
        nowmp_util::fmt_bytes(sys.net_stats().total_bytes)
    );
    sys.shutdown();
    println!("OK");
}
