//! The grace period in action (paper §3, Figure 2b vs 2c), with the
//! paper's real network cost model running in real time.
//!
//! Scenario: a workstation owner returns to her desk. The leave request
//! carries a grace period:
//!
//! * first she is patient (3 s grace, like the paper's experiments):
//!   the computation reaches an adaptation point within the grace
//!   period — a cheap **normal leave**;
//! * then an impatient owner (0 grace): the runtime cannot wait, so the
//!   process is **urgently migrated** — a new process is created on
//!   another workstation (0.7 s), the image streams at 8.1 MB/s, and
//!   the migrated process multiplexes until the next adaptation point.
//!
//! Run with: `cargo run --release --example owner_returns`

use nowmp_apps::{build_program, jacobi::Jacobi, Kernel};
use nowmp_core::{ClusterConfig, EventKind, LeaveSel};
use nowmp_net::{CostModel, NetModel};
use nowmp_omp::OmpSystem;
use std::time::Duration;

fn main() {
    let app = Jacobi::new(96);
    let cfg = ClusterConfig::test(4, 4)
        .with_net_model(NetModel::paper_scaled(0.25)) // paper constants, 4x fast-forward
        .with_cost_model(CostModel::paper_scaled(0.25)) // host side: 0.7 s spawn, 8.1 MB/s stream
        .with_dsm(nowmp_tmk::DsmConfig::default_4k());
    let mut sys = OmpSystem::new(cfg, build_program(&[&app]));
    app.setup(&mut sys);

    println!("Jacobi on 4 workstations with the 1999 network model (0.25x time)...");

    // Patient owner: plenty of grace, adaptation point arrives first.
    for it in 0..6 {
        if it == 2 {
            println!("[iter {it}] owner returns, grants 3s grace");
            sys.adapt()
                .leave(LeaveSel::Pid(3), Some(Duration::from_secs(3)))
                .unwrap();
        }
        app.step(&mut sys, it);
    }
    assert_eq!(sys.nprocs(), 3);

    // Impatient owner: zero grace — the timer fires before any
    // adaptation point, forcing migration + multiplexing.
    println!("[iter 6] another owner returns and wants the machine NOW (0 grace)");
    sys.adapt()
        .leave(LeaveSel::Pid(2), Some(Duration::ZERO))
        .unwrap();
    // Give the grace timer a moment to claim the leave and migrate.
    std::thread::sleep(Duration::from_millis(600));
    for it in 6..10 {
        app.step(&mut sys, it);
    }
    assert_eq!(sys.nprocs(), 2);

    let err = app.verify(&mut sys, 10);
    assert_eq!(err, 0.0, "results stay exact through both leave flavors");

    println!("\n--- timeline ---");
    let mut normal = 0;
    let mut urgent = 0;
    for e in sys.log().entries() {
        match &e.kind {
            EventKind::NormalLeave { .. } => normal += 1,
            EventKind::UrgentMigrationDone { .. } => urgent += 1,
            _ => {}
        }
        println!("[{:8.3}s] {:?}", e.at.as_secs_f64(), e.kind);
    }
    assert_eq!(
        normal, 2,
        "both leaves finish as normal leaves at adaptation points"
    );
    assert_eq!(
        urgent, 1,
        "the impatient owner's machine was vacated by migration"
    );
    sys.shutdown();
    println!("\nOK — one graceful leave, one urgent migration, results exact.");
}
