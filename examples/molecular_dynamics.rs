//! Molecular dynamics on a shrinking and growing NOW.
//!
//! NBF (the paper's irregular kernel) runs a short MD simulation while
//! the workstation pool fluctuates: two machines join early, then three
//! leave in one batch (the paper: "all adapt event signals received
//! between two successive adaptation points are handled at the next
//! adaptation point … much cheaper than adapting at successive
//! points"), then one joins back. Forces and positions stay bit-exact
//! throughout.
//!
//! Run with: `cargo run --release --example molecular_dynamics`

use nowmp_apps::{build_program, nbf::Nbf, Kernel};
use nowmp_core::{ClusterConfig, EventKind, LeaveSel};
use nowmp_omp::OmpSystem;

fn main() {
    let app = Nbf::new(256, 12);
    let iters = 12;

    let mut sys = OmpSystem::new(ClusterConfig::test(6, 3), build_program(&[&app]));
    app.setup(&mut sys);

    println!(
        "NBF: {} atoms x {} partners, starting on {} processes",
        app.atoms,
        app.partners,
        sys.nprocs()
    );
    for it in 0..iters {
        match it {
            2 => {
                println!("[step {it}] two workstations become available");
                sys.join_ready().unwrap();
                sys.join_ready().unwrap();
            }
            6 => {
                println!("[step {it}] three owners return at once -> batched leaves");
                let n = sys.nprocs();
                sys.adapt()
                    .leave(LeaveSel::Pid((n - 1) as u16), None)
                    .unwrap();
                sys.adapt()
                    .leave(LeaveSel::Pid((n - 2) as u16), None)
                    .unwrap();
                sys.adapt()
                    .leave(LeaveSel::Pid((n - 3) as u16), None)
                    .unwrap();
            }
            9 => {
                println!("[step {it}] one machine frees up again");
                sys.join_ready().unwrap();
            }
            _ => {}
        }
        app.step(&mut sys, it);
        println!("[step {it}] team = {} processes", sys.nprocs());
    }

    let err = app.verify(&mut sys, iters);
    println!("\nmax abs error vs serial MD: {err:e}");
    assert_eq!(err, 0.0);

    // The batched leave shows up as ONE adaptation with leaves=3.
    let batched = sys
        .log()
        .entries()
        .into_iter()
        .any(|e| matches!(e.kind, EventKind::Adaptation { leaves: 3, .. }));
    assert!(
        batched,
        "three leaves must be handled at one adaptation point"
    );
    println!("OK — 3 leaves were batched into a single adaptation, results exact.");
    sys.shutdown();
}
