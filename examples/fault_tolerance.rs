//! Fault tolerance (paper §4.3): checkpoint at adaptation points,
//! recover after a catastrophic failure.
//!
//! "Whereas a distributed computation normally requires a consistent
//! checkpoint or some form of message logging …, we can avoid much of
//! this complication by limiting checkpoints to the OpenMP adaptation
//! points": slaves hold no private state there, so the master alone
//! garbage-collects, gathers all pages, and dumps one file.
//!
//! This example runs Gauss, checkpoints mid-elimination, "crashes",
//! recovers from the file on a fresh cluster, replays the main loop
//! (completed forks fast-forward) and verifies the final matrix is
//! identical to an uninterrupted run.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use nowmp_apps::{build_program, gauss::Gauss, Kernel};
use nowmp_core::ClusterConfig;
use nowmp_omp::OmpSystem;

fn main() {
    let app = Gauss::new(48);
    let iters = app.default_iters();
    let dir = std::env::temp_dir().join("nowmp-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("gauss.ckpt");

    let cfg = ClusterConfig::test(4, 3).with_ckpt_path(path.clone());

    // --- First life: run halfway, checkpoint, "crash". ---
    let mut sys = OmpSystem::new(cfg.clone(), build_program(&[&app]));
    app.setup(&mut sys);
    let half = iters / 2;
    for it in 0..half {
        app.step(&mut sys, it);
    }
    sys.adapt().checkpoint();
    app.step(&mut sys, half); // checkpoint happens at this adaptation point
    let forks_at_ckpt = sys.fork_no();
    println!(
        "checkpoint written after {} forks ({})",
        forks_at_ckpt,
        nowmp_util::fmt_bytes(std::fs::metadata(&path).unwrap().len())
    );
    println!("power flicker! dropping the whole cluster without cleanup...");
    drop(sys); // simulated catastrophic failure: no graceful shutdown

    // --- Second life: recover and finish. ---
    let (mut sys, _blob) =
        OmpSystem::recover(cfg, build_program(&[&app]), &path).expect("checkpoint reads back");
    println!(
        "recovered: {} forks already done, replaying the main loop...",
        sys.fork_no()
    );
    // The application replays its loop from the top; completed forks
    // are skipped (sequential master code here is replay-safe).
    app.setup(&mut sys); // gauss_init fork is part of the replayed prefix
    for it in 0..iters {
        app.step(&mut sys, it);
    }
    let err = app.verify(&mut sys, iters);
    println!("max abs error vs uninterrupted serial elimination: {err:e}");
    assert_eq!(err, 0.0, "recovery must reproduce the exact computation");
    sys.shutdown();
    std::fs::remove_file(&path).ok();
    println!("OK — crashed, recovered, finished, verified.");
}
