//! Adaptive Jacobi: the paper's headline scenario.
//!
//! A Jacobi solver runs on a NOW while workstations come and go:
//!
//! * at iteration 10 a workstation owner goes home — her machine joins
//!   the pool and the team grows at the next adaptation point;
//! * at iteration 20 another owner returns — his machine leaves
//!   normally within the grace period;
//! * the application code (the Jacobi kernel) contains **zero** lines
//!   about any of this, and the result is bit-identical to a fixed-team
//!   run.
//!
//! Run with: `cargo run --release --example adaptive_jacobi`

use nowmp_apps::{build_program, jacobi::Jacobi, Kernel};
use nowmp_core::{ClusterConfig, LeaveSel};
use nowmp_omp::OmpSystem;

fn main() {
    let app = Jacobi::new(128);
    let iters = 30;

    // 5 workstations; 4 participate initially, one is someone's desk.
    let mut sys = OmpSystem::new(ClusterConfig::test(5, 4), build_program(&[&app]));
    app.setup(&mut sys);

    println!("running {iters} Jacobi iterations on a 128x128 grid...");
    for it in 0..iters {
        match it {
            10 => {
                println!("[iter {it}] workstation becomes available -> join requested");
                sys.join_ready().expect("a workstation is free");
            }
            20 => {
                println!("[iter {it}] workstation owner returns -> leave requested (3s grace)");
                sys.adapt()
                    .leave(LeaveSel::Pid(2), Some(std::time::Duration::from_secs(3)))
                    .expect("slave can leave");
            }
            _ => {}
        }
        app.step(&mut sys, it);
        if it == 10 || it == 11 || it == 20 || it == 21 {
            println!("[iter {it}] team size now {}", sys.nprocs());
        }
    }

    let err = app.verify(&mut sys, iters);
    println!("\nmax abs error vs serial reference: {err:e}");
    assert_eq!(err, 0.0, "adaptation must not change results");

    println!("\n--- event timeline ---");
    for e in sys.log().entries() {
        println!("[{:8.4}s] {:?}", e.at.as_secs_f64(), e.kind);
    }
    sys.shutdown();
    println!("\nOK — the computation adapted twice and stayed exact.");
}
