//! Tests of the extension features beyond the paper's prototype:
//! the scripted availability daemon, master migration (§4.4 says the
//! master *can* migrate), and §7's strip-mining transformation for
//! adaptation-point frequency control.

use nowmp::apps::{build_program, jacobi::Jacobi, Kernel};
use nowmp::core::{Driver, DriverEvent, EventKind, Schedule};
use nowmp::prelude::*;
use std::time::Duration;

#[test]
fn scripted_driver_runs_events_against_live_cluster() {
    let app = Jacobi::new(24);
    let mut sys = OmpSystem::new(ClusterConfig::test(5, 3), build_program(&[&app]));
    app.setup(&mut sys);

    // The "daemon": a workstation frees up almost immediately; later an
    // owner returns.
    let schedule = Schedule::new()
        .at(Duration::from_millis(5), DriverEvent::Join)
        .at(
            Duration::from_millis(60),
            DriverEvent::LeaveByPid {
                pid: 1,
                grace: None,
            },
        );
    let driver = Driver::spawn(sys.shared(), schedule);

    let clock = sys.shared().clock().clone();
    for it in 0..20 {
        app.step(&mut sys, it);
        // Adaptation points arrive every few ms; pace the loop on the
        // cluster clock so the daemon's schedule (measured on the same
        // clock) gets room to fire — under a virtual clock the whole
        // dance replays in simulated time at zero wall cost.
        clock.sleep(Duration::from_millis(5));
    }
    let outcomes = driver.join();
    assert_eq!(outcomes.len(), 2);
    assert!(outcomes.iter().all(|(_, r)| r.is_ok()), "{outcomes:?}");

    assert_eq!(app.verify(&mut sys, 20), 0.0);
    let kinds: Vec<_> = sys.log().entries().into_iter().map(|e| e.kind).collect();
    assert!(kinds
        .iter()
        .any(|k| matches!(k, EventKind::JoinCommitted { .. })));
    assert!(kinds
        .iter()
        .any(|k| matches!(k, EventKind::NormalLeave { .. })));
    sys.shutdown();
}

#[test]
fn master_can_migrate_but_not_leave() {
    let app = Jacobi::new(24);
    let mut sys = OmpSystem::new(ClusterConfig::test(4, 3), build_program(&[&app]));
    app.setup(&mut sys);
    app.step(&mut sys, 0);

    let master_gpid = sys.cluster().team()[0];
    // §4.4: no normal leave for the master...
    assert!(matches!(
        sys.adapt().leave(LeaveSel::Gpid(master_gpid), None),
        Err(nowmp::core::AdaptError::MasterCannotLeave)
    ));
    // ...but it can migrate.
    let shared = sys.shared();
    shared
        .migrate_now(master_gpid, nowmp::net::HostId(3))
        .expect("master migrates");
    let kinds: Vec<_> = sys.log().entries().into_iter().map(|e| e.kind).collect();
    assert!(kinds.iter().any(|k| matches!(
        k,
        EventKind::UrgentMigrationDone { gpid, .. } if *gpid == master_gpid
    )));

    // The computation continues correctly from the new host.
    for it in 1..6 {
        app.step(&mut sys, it);
    }
    assert_eq!(app.verify(&mut sys, 6), 0.0);
    sys.shutdown();
}

#[test]
fn migrate_to_same_host_is_noop() {
    let app = Jacobi::new(16);
    let mut sys = OmpSystem::new(ClusterConfig::test(3, 2), build_program(&[&app]));
    app.setup(&mut sys);
    let g = sys.cluster().team()[1];
    let shared = sys.shared();
    shared
        .migrate_now(g, nowmp::net::HostId(1))
        .expect("same-host migrate ok");
    let migrations = sys
        .log()
        .entries()
        .into_iter()
        .filter(|e| matches!(e.kind, EventKind::UrgentMigrationStart { .. }))
        .count();
    assert_eq!(migrations, 0, "same-host migration is free");
    sys.shutdown();
}

// --- strip mining (§7) ---

fn strip_program() -> OmpProgram {
    OmpProgram::new()
        .region("fill", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let x = ctx.f64vec("x");
            ctx.for_static(0..n, |c, i| x.set(c.dsm(), i as usize, i as f64));
        })
        .region("scale_strip", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let x = ctx.f64vec("x");
            ctx.for_static_stripped(0..n, |c, i| {
                let v = x.get(c.dsm(), i as usize);
                x.set(c.dsm(), i as usize, 2.0 * v);
            });
        })
}

#[test]
fn strip_mining_covers_range_exactly_once() {
    let n = 500u64;
    for strips in [1usize, 3, 7] {
        let mut sys = OmpSystem::new(ClusterConfig::test(4, 3), strip_program());
        sys.alloc_f64("x", n);
        sys.parallel("fill", &nowmp::omp::Params::new().u64(n).build());
        let forks_before = sys.fork_no();
        sys.parallel_strips(
            "scale_strip",
            0..n,
            strips,
            &nowmp::omp::Params::new().u64(n).build(),
        );
        assert_eq!(
            sys.fork_no() - forks_before,
            strips as u64,
            "one fork (adaptation point) per strip"
        );
        let x: Vec<f64> = sys.seq(|ctx| {
            let v = ctx.f64vec("x");
            let mut out = vec![0.0; n as usize];
            v.read_into(ctx.dsm(), 0, &mut out);
            out
        });
        for i in 0..n as usize {
            assert_eq!(x[i], 2.0 * i as f64, "strips={strips} i={i}");
        }
        sys.shutdown();
    }
}

#[test]
fn strip_mining_multiplies_adaptation_opportunities() {
    // A leave requested mid-strip-sequence takes effect BETWEEN strips
    // of one logical loop — the whole point of §7's transformation.
    let n = 400u64;
    let mut sys = OmpSystem::new(ClusterConfig::test(4, 4), strip_program());
    sys.alloc_f64("x", n);
    sys.parallel("fill", &nowmp::omp::Params::new().u64(n).build());
    sys.adapt().leave(LeaveSel::Pid(3), None).unwrap();
    sys.parallel_strips(
        "scale_strip",
        0..n,
        4,
        &nowmp::omp::Params::new().u64(n).build(),
    );
    assert_eq!(
        sys.nprocs(),
        3,
        "leave committed at the first strip boundary"
    );
    let x: Vec<f64> = sys.seq(|ctx| {
        let v = ctx.f64vec("x");
        let mut out = vec![0.0; n as usize];
        v.read_into(ctx.dsm(), 0, &mut out);
        out
    });
    for i in 0..n as usize {
        assert_eq!(x[i], 2.0 * i as f64);
    }
    sys.shutdown();
}

#[test]
fn unstripped_region_sees_full_range_marker() {
    let program = OmpProgram::new().region("probe", |ctx| {
        let (lo, hi) = ctx.strip_bounds();
        assert_eq!((lo, hi), (0, u64::MAX));
    });
    let mut sys = OmpSystem::new(ClusterConfig::test(2, 2), program);
    sys.parallel("probe", &[]);
    sys.shutdown();
}
