//! Workspace smoke test: the facade crate's re-exports resolve, the
//! prelude is usable, and the `quickstart` example's programming-model
//! logic runs end-to-end under `cargo test`.
//!
//! This is the canary CI relies on: if a crate is dropped from the
//! workspace, a re-export is renamed, or the fork-join path breaks,
//! this fails before any deeper suite runs.

use nowmp::prelude::*;

/// Every facade module path must resolve and expose its headline type.
/// (A compile-time check: if any of these paths break, the test file
/// no longer builds.)
#[test]
fn facade_reexports_resolve() {
    // util
    let crc = nowmp::util::crc::crc32(b"nowmp");
    assert_eq!(crc, nowmp::util::crc::crc32(b"nowmp"));
    let _ = nowmp::util::fmt_bytes(1024);
    // net
    let _gpid: nowmp::net::Gpid = Gpid(7);
    let _host: nowmp::net::HostId = HostId(0);
    let _model: nowmp::net::NetModel = NetModel::disabled();
    // tmk
    let _cfg: nowmp::tmk::DsmConfig = DsmConfig::test_small();
    let _kind: nowmp::tmk::ElemKind = ElemKind::F64;
    // ckpt
    let _ = std::any::type_name::<nowmp::ckpt::CkptError>();
    // core
    let _cc: nowmp::core::ClusterConfig = ClusterConfig::test(2, 2);
    let _ = std::any::type_name::<nowmp::core::Cluster>();
    let _ = std::any::type_name::<LeaveStrategy>();
    let _ = std::any::type_name::<ReassignPolicy>();
    // omp
    let _ = std::any::type_name::<OmpSystem>();
    let _ = std::any::type_name::<OmpProgram>();
    let _ = std::any::type_name::<OmpCtx<'_>>();
    let _params = Params::new().u64(1).build();
    // apps
    let _ = std::any::type_name::<nowmp::apps::jacobi::Jacobi>();
}

/// The quickstart example's logic (AXPY + reduction on a 4-process
/// simulated NOW), kept in sync with `examples/quickstart.rs` but
/// sized down for the test suite.
#[test]
fn quickstart_logic_runs() {
    let n = 1_000u64;

    let program = OmpProgram::new()
        .region("init", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let x = ctx.f64vec("x");
            let y = ctx.f64vec("y");
            ctx.for_static(0..n, |c, i| {
                x.set(c.dsm(), i as usize, i as f64);
                y.set(c.dsm(), i as usize, 1.0);
            });
        })
        .region("axpy", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let a = p.f64();
            let x = ctx.f64vec("x");
            let y = ctx.f64vec("y");
            ctx.for_static(0..n, |c, i| {
                let v = a * x.get(c.dsm(), i as usize) + y.get(c.dsm(), i as usize);
                y.set(c.dsm(), i as usize, v);
            });
        })
        .region("sum", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let y = ctx.f64vec("y");
            let out = ctx.f64vec("out");
            let mut local = 0.0;
            ctx.for_static(0..n, |c, i| local += y.get(c.dsm(), i as usize));
            let total = ctx.reduce_sum_f64(local);
            ctx.master(|c| out.set(c.dsm(), 0, total));
        });

    let mut sys = OmpSystem::new(ClusterConfig::test(4, 4), program);
    sys.alloc_f64("x", n);
    sys.alloc_f64("y", n);
    sys.alloc_f64("out", 1);

    sys.parallel("init", &Params::new().u64(n).build());
    sys.parallel("axpy", &Params::new().u64(n).f64(2.0).build());
    sys.parallel("sum", &Params::new().u64(n).build());

    let total = sys.seq(|ctx| {
        let out = ctx.f64vec("out");
        out.get(ctx.dsm(), 0)
    });
    let expect: f64 = (0..n).map(|i| 2.0 * i as f64 + 1.0).sum();
    assert_eq!(total, expect, "distributed result must match serial");

    let stats = sys.net_stats();
    assert!(
        stats.total_msgs > 0,
        "a 4-process run must exchange messages"
    );
    sys.shutdown();
}
