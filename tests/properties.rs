//! Workspace-level property tests: randomized adaptation schedules,
//! team-size trajectories and problem sizes must never change results.

use nowmp::apps::{build_program, jacobi::Jacobi, Kernel};
use nowmp::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One randomized action per iteration.
#[derive(Debug, Clone, Copy)]
enum Action {
    Nothing,
    Leave,
    Join,
}

fn run_with_schedule(seed: u64, n_grid: usize, iters: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let app = Jacobi::new(n_grid);
    let mut sys = OmpSystem::new(ClusterConfig::test(6, 3), build_program(&[&app]));
    app.setup(&mut sys);
    for it in 0..iters {
        let action = match rng.gen_range(0..4) {
            0 => Action::Leave,
            1 => Action::Join,
            _ => Action::Nothing,
        };
        match action {
            Action::Leave if sys.nprocs() > 1 => {
                let pid = rng.gen_range(1..sys.nprocs()) as u16;
                let _ = sys.adapt().leave(LeaveSel::Pid(pid), None);
            }
            Action::Join => {
                let _ = sys.join_ready();
            }
            _ => {}
        }
        app.step(&mut sys, it);
    }
    let err = app.verify(&mut sys, iters);
    sys.shutdown();
    err
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_adaptation_schedules_preserve_results(seed in 0u64..1_000_000) {
        let err = run_with_schedule(seed, 20, 6);
        prop_assert_eq!(err, 0.0, "seed {} must stay exact", seed);
    }

    #[test]
    fn random_team_sizes_preserve_results(procs in 1usize..6, grid in 3usize..24) {
        let app = Jacobi::new(grid.max(3));
        let (sys, err) = nowmp::apps::run_kernel(
            &app,
            ClusterConfig::test(procs + 1, procs),
            3,
        );
        prop_assert_eq!(err, 0.0);
        sys.shutdown();
    }
}

#[test]
fn many_seeds_sequential() {
    // A denser deterministic sweep (not under proptest shrinking).
    for seed in [1u64, 7, 42, 99, 1234] {
        assert_eq!(run_with_schedule(seed, 16, 8), 0.0, "seed {seed}");
    }
}
