//! Workspace-level end-to-end tests: the whole stack (net → tmk → core
//! → omp → apps) through the facade crate, exercising every paper
//! mechanism on every kernel.

use nowmp::apps::{build_program, fft3d::Fft3d, gauss::Gauss, jacobi::Jacobi, nbf::Nbf, Kernel};
use nowmp::prelude::*;

fn kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Jacobi::new(24)),
        Box::new(Gauss::new(16)),
        Box::new(Fft3d::new(4, 4, 4)),
        Box::new(Nbf::new(48, 6)),
    ]
}

fn iters_for(k: &dyn Kernel) -> usize {
    match k.name() {
        "Gauss" => 15,
        "3D-FFT" => 2,
        "NBF" => 3,
        _ => 6,
    }
}

#[test]
fn every_kernel_exact_on_every_team_size() {
    for k in kernels() {
        for procs in [1usize, 2, 3, 5] {
            let (sys, err) = nowmp::apps::run_kernel(
                k.as_ref(),
                ClusterConfig::test(procs + 1, procs),
                iters_for(k.as_ref()),
            );
            assert_eq!(err, 0.0, "{} on {procs} procs", k.name());
            sys.shutdown();
        }
    }
}

#[test]
fn every_kernel_survives_leave_and_join() {
    for k in kernels() {
        let iters = iters_for(k.as_ref());
        let mut sys = OmpSystem::new(ClusterConfig::test(6, 4), build_program(&[k.as_ref()]));
        k.setup(&mut sys);
        for it in 0..iters {
            if it == 1 {
                sys.adapt().leave(LeaveSel::Pid(3), None).unwrap();
            }
            if it == 2 {
                sys.join_ready().unwrap();
            }
            k.step(&mut sys, it);
        }
        let err = k.verify(&mut sys, iters);
        assert_eq!(err, 0.0, "{} under adaptation", k.name());
        sys.shutdown();
    }
}

#[test]
fn every_kernel_survives_urgent_leave() {
    for k in kernels() {
        let iters = iters_for(k.as_ref());
        let mut sys = OmpSystem::new(ClusterConfig::test(5, 4), build_program(&[k.as_ref()]));
        k.setup(&mut sys);
        for it in 0..iters {
            if it == 1 {
                let g = sys.adapt().leave(LeaveSel::Pid(3), None).unwrap();
                assert!(sys.shared().force_urgent(g), "urgent path must engage");
            }
            k.step(&mut sys, it);
        }
        let err = k.verify(&mut sys, iters);
        assert_eq!(err, 0.0, "{} under urgent leave", k.name());
        assert_eq!(sys.nprocs(), 3);
        sys.shutdown();
    }
}

#[test]
fn mixed_program_runs_all_kernels_in_one_system() {
    // All four kernels registered in one program, interleaved steps —
    // the DSM hosts all shared arrays side by side.
    let j = Jacobi::new(16);
    let g = Gauss::new(12);
    let f = Fft3d::new(4, 4, 4);
    let n = Nbf::new(32, 4);
    let program = build_program(&[&j, &g, &f, &n]);
    let mut sys = OmpSystem::new(ClusterConfig::test(4, 3), program);
    j.setup(&mut sys);
    g.setup(&mut sys);
    f.setup(&mut sys);
    n.setup(&mut sys);
    for it in 0..4 {
        j.step(&mut sys, it);
        g.step(&mut sys, it);
        f.step(&mut sys, it);
        n.step(&mut sys, it);
    }
    assert_eq!(j.verify(&mut sys, 4), 0.0);
    assert_eq!(g.verify(&mut sys, 4), 0.0);
    assert_eq!(f.verify(&mut sys, 4), 0.0);
    assert_eq!(n.verify(&mut sys, 4), 0.0);
    sys.shutdown();
}

#[test]
fn checkpoint_recover_mid_run_all_kernels() {
    let dir = std::env::temp_dir().join("nowmp-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    for k in kernels() {
        let iters = iters_for(k.as_ref());
        let path = dir.join(format!("{}.ckpt", k.name().replace('/', "_")));
        let cfg = ClusterConfig::test(4, 3).with_ckpt_path(path.clone());

        // Uninterrupted run for the expected outcome.
        let (sys, err) = nowmp::apps::run_kernel(k.as_ref(), cfg.clone(), iters);
        assert_eq!(err, 0.0);
        sys.shutdown();

        // Checkpointed run, crash after the checkpoint iteration.
        let mut sys = OmpSystem::new(cfg.clone(), build_program(&[k.as_ref()]));
        k.setup(&mut sys);
        let half = (iters / 2).max(1);
        for it in 0..half {
            k.step(&mut sys, it);
        }
        sys.adapt().checkpoint();
        k.step(&mut sys, half);
        drop(sys); // crash

        // Recover and replay the identical main loop.
        let (mut sys, _blob) =
            OmpSystem::recover(cfg, build_program(&[k.as_ref()]), &path).unwrap();
        k.setup(&mut sys);
        for it in 0..iters {
            k.step(&mut sys, it);
        }
        let err = k.verify(&mut sys, iters);
        assert_eq!(
            err,
            0.0,
            "{} recovery must converge to the same result",
            k.name()
        );
        sys.shutdown();
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn grow_shrink_stress_sequence() {
    // Aggressive schedule: the team size walks 4→2→5→1→3 while Jacobi
    // iterates; results stay exact the whole way.
    let app = Jacobi::new(32);
    let mut sys = OmpSystem::new(ClusterConfig::test(6, 4), build_program(&[&app]));
    app.setup(&mut sys);
    let schedule: Vec<(usize, i32)> = vec![
        (1, -1),
        (2, -1), // down to 2
        (3, 1),
        (4, 1),
        (5, 1), // up to 5
        (6, -1),
        (7, -1),
        (8, -1),
        (9, -1), // down to 1 (master only)
        (10, 1),
        (11, 1), // back to 3
    ];
    let mut si = 0;
    for it in 0..14 {
        while si < schedule.len() && schedule[si].0 == it {
            if schedule[si].1 < 0 {
                let pid = (sys.nprocs() - 1) as u16;
                sys.adapt().leave(LeaveSel::Pid(pid), None).unwrap();
            } else {
                sys.join_ready().unwrap();
            }
            si += 1;
        }
        app.step(&mut sys, it);
    }
    assert_eq!(sys.nprocs(), 3);
    assert_eq!(app.verify(&mut sys, 14), 0.0);
    sys.shutdown();
}

#[test]
fn paper_claim_no_overhead_without_adaptation() {
    // Table 1's headline: the adaptive system with zero adapt events
    // produces the same protocol traffic as the non-adaptive system.
    let app = Jacobi::new(32);
    let run = |adaptive: bool| {
        let cfg = ClusterConfig::test(4, 4).with_adaptive(adaptive);
        let mut sys = OmpSystem::new(cfg, build_program(&[&app]));
        app.setup(&mut sys);
        for it in 0..6 {
            app.step(&mut sys, it);
        }
        let d = sys.dsm_stats();
        let n = sys.net_stats();
        sys.shutdown();
        (d.pages_fetched, d.diffs_fetched, n.total_msgs)
    };
    let std_run = run(false);
    let ada_run = run(true);
    assert_eq!(std_run, ada_run, "identical protocol traffic (Table 1)");
}

#[test]
fn dsm_stats_expose_protocol_shape() {
    let app = Gauss::new(24);
    let mut sys = OmpSystem::new(ClusterConfig::test(4, 4), build_program(&[&app]));
    app.setup(&mut sys);
    for it in 0..app.default_iters() {
        app.step(&mut sys, it);
    }
    let s = sys.dsm_stats();
    assert!(s.pages_fetched > 0);
    assert_eq!(s.diffs_fetched, 0, "Gauss signature");
    assert!(s.forks as usize >= app.default_iters());
    assert!(s.twins_created > 0);
    sys.shutdown();
}
