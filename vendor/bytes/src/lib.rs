//! Offline shim for the subset of the `bytes` crate used by the
//! `nowmp` workspace: a cheaply-cloneable, immutable byte buffer.
//!
//! `Bytes` is either a borrowed `&'static [u8]` (no allocation, used
//! for protocol literals) or an `Arc<[u8]>` (one allocation, O(1)
//! clone). The real crate's zero-copy slicing is not needed by this
//! workspace — payloads are built once by the wire encoder and read
//! whole by the decoder.

use std::sync::Arc;

/// A cheaply-cloneable immutable buffer of bytes.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice (no allocation).
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes(Repr::Static(s))
    }

    /// Copies a slice into a shared buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(s)))
    }

    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Extracts the bytes as a `Vec`, copying.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes(Repr::Shared(Arc::from(b)))
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a, [1u8, 2, 3]);
        assert_eq!(&a[1..], &[2, 3]);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }
}
