//! Offline shim for the subset of the `parking_lot` API used by the
//! `nowmp` workspace, implemented over `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external APIs it relies on. Semantics match
//! `parking_lot` where it matters for callers:
//!
//! * `Mutex::lock` / `RwLock::{read,write}` return guards directly
//!   (poisoning is swallowed — a panicking holder does not wedge the
//!   lock for everyone else).
//! * `Condvar::wait*` take `&mut MutexGuard` instead of consuming the
//!   guard.

use std::time::{Duration, Instant};

// ---------------------------------------------------------------- Mutex

/// A mutual exclusion primitive (std-backed, poison-free API).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar`] can temporarily
/// take ownership during a wait (std's condvar consumes the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    g: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(t),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            g: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { g: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                g: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.g.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.g.as_mut().expect("guard taken during condvar wait")
    }
}

// -------------------------------------------------------------- Condvar

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default, Debug)]
pub struct Condvar {
    cv: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            cv: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.g.take().expect("guard taken during condvar wait");
        let g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.g = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.g.take().expect("guard taken during condvar wait");
        let (g, res) = match self.cv.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.g = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) {
        self.cv.notify_one();
    }

    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}

// --------------------------------------------------------------- RwLock

/// Reader-writer lock (std-backed, poison-free API).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(t),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakeup() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
        h.join().unwrap();
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
