//! Offline shim for the subset of `crossbeam-channel` used by the
//! `nowmp` workspace: multi-producer multi-consumer channels with
//! cloneable senders *and* receivers, bounded or unbounded capacity,
//! and timeout-aware receives.
//!
//! Built on a `Mutex<VecDeque>` + two condvars. This trades the
//! lock-free performance of the real crate for zero dependencies; the
//! workspace's message rates (simulated NOW traffic) are far below the
//! point where that matters, and `nowmp-bench` measures the difference
//! explicitly.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ----------------------------------------------------------- errors

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the channel still empty.
    Timeout,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

// ------------------------------------------------------------ shared

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Bounded capacity; `None` means unbounded.
    cap: Option<usize>,
    /// Signalled when an item is pushed or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when an item is popped or the last receiver leaves.
    not_full: Condvar,
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a bounded channel with the given capacity.
///
/// Capacity 0 (a rendezvous channel in the real crate) is rounded up
/// to 1: the workspace never uses rendezvous semantics.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

// ------------------------------------------------------------ sender

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Blocks while a bounded channel is full; errors when every
    /// receiver has been dropped.
    pub fn send(&self, t: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.receivers == 0 {
                return Err(SendError(t));
            }
            match self.shared.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self
                        .shared
                        .not_full
                        .wait(st)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        st.queue.push_back(t);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    pub fn is_empty(&self) -> bool {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .is_empty()
    }

    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake receivers blocked on an empty queue so they can
            // observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

// ---------------------------------------------------------- receiver

/// The receiving half of a channel. Cloneable.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until an item arrives; errors when the channel is empty
    /// and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(t) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(t);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks for at most `timeout`. A timeout too large to represent
    /// as a deadline (e.g. `Duration::MAX`) blocks like [`recv`],
    /// matching the real crate's saturating behaviour.
    ///
    /// [`recv`]: Receiver::recv
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = match Instant::now().checked_add(timeout) {
            Some(d) => d,
            None => {
                return self
                    .recv()
                    .map_err(|RecvError| RecvTimeoutError::Disconnected);
            }
        };
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(t) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(t);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, res) = self
                .shared
                .not_empty
                .wait_timeout(st, remaining)
                .unwrap_or_else(|e| e.into_inner());
            st = g;
            if res.timed_out() && st.queue.is_empty() {
                return if st.senders == 0 {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }

    /// Never blocks.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(t) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(t);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn is_empty(&self) -> bool {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .is_empty()
    }

    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.receivers -= 1;
        let last = st.receivers == 0;
        drop(st);
        if last {
            // Wake senders blocked on a full queue so they can observe
            // the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );

        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(7).unwrap();
        assert_eq!(rx2.recv(), Ok(7));
        assert_eq!(rx1.try_recv(), Err(TryRecvError::Empty));
    }
}
