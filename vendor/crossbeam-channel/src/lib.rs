//! Offline shim for the subset of `crossbeam-channel` used by the
//! `nowmp` workspace: multi-producer multi-consumer channels with
//! cloneable senders *and* receivers, bounded or unbounded capacity,
//! and timeout-aware receives.
//!
//! ## Implementation and ordering guarantees
//!
//! *Unbounded* channels — the message hot path (every simulated NIC
//! queue is one) — run on a lock-free bounded MPMC ring (Vyukov
//! sequence ring, [`RING_SLOTS`] slots): an uncontended send is one
//! CAS plus two atomic stores, no mutex. When the ring fills faster
//! than the receiver drains it, the channel *degrades* to a
//! mutex-protected overflow queue; once the receiver has drained the
//! overflow it flips back to the ring. Degradation preserves the
//! channel's total FIFO order: while the overflow is non-empty every
//! send goes to the overflow (never the ring), and receivers always
//! drain the ring — whose items are all older — first.
//!
//! *Bounded* channels keep the simple `Mutex<VecDeque>` + condvar
//! implementation: they exist for backpressure, where the blocked-full
//! case is the point and a lock-free fast path buys nothing.
//!
//! Ordering guarantees (matching the real crate): per-channel total
//! FIFO — if `send(a)` happens-before `send(b)`, every receiver
//! observes `a` before `b`; items sent concurrently may land in either
//! order. Blocked receivers are woken by a sleeper-counted condvar:
//! senders only touch the (uncontended) park mutex when a receiver is
//! actually asleep, so one wakeup can drain a burst of sends.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Ring capacity of the unbounded fast path (power of two). Bursts
/// larger than this fall back to the overflow queue — correct, just
/// slower — so the value only bounds the *lock-free* window.
const RING_SLOTS: usize = 256;

// ----------------------------------------------------------- errors

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the channel still empty.
    Timeout,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

// ----------------------------------------------- lock-free MPMC ring

/// One slot of the sequence ring. `seq` encodes the slot's lap state:
/// equal to the ticket for an empty slot ready to write, ticket + 1
/// for a written slot ready to read.
struct Slot<T> {
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free MPMC FIFO (Dmitry Vyukov's sequence ring).
/// Tickets taken from `tail`/`head` by CAS give each push/pop a unique
/// slot; the per-slot `seq` makes the handoff visible without any
/// shared lock. Items pop in ticket order, so the ring is totally
/// FIFO.
struct Ring<T> {
    mask: usize,
    tail: AtomicUsize,
    head: AtomicUsize,
    slots: Box<[Slot<T>]>,
}

unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    fn new(cap: usize) -> Self {
        assert!(cap.is_power_of_two());
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Ring {
            mask: cap - 1,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
            slots,
        }
    }

    /// Push; `Err(t)` hands the value back when the ring is full.
    fn push(&self, t: T) -> Result<(), T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { (*slot.val.get()).write(t) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(cur) => pos = cur,
                }
            } else if (seq.wrapping_sub(pos) as isize) < 0 {
                // Slot still holds an unread item a full lap behind:
                // the ring is full.
                return Err(t);
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    fn pop(&self) -> Option<T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let ready = pos.wrapping_add(1);
            if seq == ready {
                match self.head.compare_exchange_weak(
                    pos,
                    ready,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let t = unsafe { (*slot.val.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(t);
                    }
                    Err(cur) => pos = cur,
                }
            } else if (seq.wrapping_sub(ready) as isize) < 0 {
                // Slot not written yet: ring empty (at this position).
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head).min(self.mask + 1)
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

// --------------------------------------------------- channel flavors

/// Unbounded fast path: ring + FIFO-preserving overflow + parking.
struct Fast<T> {
    ring: Ring<T>,
    /// Spill queue for ring-full bursts. Invariant: non-empty implies
    /// `degraded` is true (both only change under this mutex).
    overflow: Mutex<VecDeque<T>>,
    /// While set, *all* sends go to the overflow so the channel stays
    /// totally FIFO; cleared (under the overflow lock) when a receiver
    /// finds the overflow empty.
    degraded: AtomicBool,
    /// Receivers currently parked (or about to park) on `not_empty`.
    sleepers: AtomicUsize,
    /// Parking lot; never held while touching the ring from senders.
    park: Mutex<()>,
    not_empty: Condvar,
}

impl<T> Fast<T> {
    fn push(&self, t: T) {
        let t = if self.degraded.load(Ordering::Acquire) {
            t
        } else {
            match self.ring.push(t) {
                Ok(()) => return,
                Err(back) => back, // ring full: degrade
            }
        };
        let mut of = self.overflow.lock().unwrap_or_else(|e| e.into_inner());
        self.degraded.store(true, Ordering::Release);
        of.push_back(t);
    }

    fn pop(&self) -> Option<T> {
        // Ring first: while degraded no new items enter the ring, so
        // everything in it is older than any overflow item.
        if let Some(t) = self.ring.pop() {
            return Some(t);
        }
        if self.degraded.load(Ordering::Acquire) {
            let mut of = self.overflow.lock().unwrap_or_else(|e| e.into_inner());
            let t = of.pop_front();
            if of.is_empty() {
                // Clearing under the lock: a sender blocked on this
                // mutex re-reads `degraded` only via `push`'s initial
                // load on its *next* send; within this send it still
                // appends to the overflow, which just re-degrades —
                // correct either way. Receivers stop paying the lock.
                self.degraded.store(false, Ordering::Release);
            }
            if t.is_some() {
                return t;
            }
            // Overflow drained by a racing receiver; fall through.
        }
        None
    }

    fn queue_len(&self) -> usize {
        self.ring.len()
            + self
                .overflow
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
    }

    /// Wake sleeping receivers if any. Pairs the `SeqCst` fence with
    /// the one in the receiver's register-then-recheck sequence so a
    /// sender either sees the sleeper or the receiver sees the item.
    fn wake(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _g = self.park.lock().unwrap_or_else(|e| e.into_inner());
            self.not_empty.notify_all();
        }
    }
}

/// Bounded flavor: plain mutex + condvars (backpressure path).
struct BoundedQ<T> {
    cap: usize,
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

enum Flavor<T> {
    Fast(Fast<T>),
    Bounded(BoundedQ<T>),
}

struct Shared<T> {
    senders: AtomicUsize,
    receivers: AtomicUsize,
    flavor: Flavor<T>,
}

impl<T> Shared<T> {
    fn disconnected_tx(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }
}

fn channel_with<T>(flavor: Flavor<T>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        flavor,
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Creates an unbounded channel (lock-free ring fast path).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel_with(Flavor::Fast(Fast {
        ring: Ring::new(RING_SLOTS),
        overflow: Mutex::new(VecDeque::new()),
        degraded: AtomicBool::new(false),
        sleepers: AtomicUsize::new(0),
        park: Mutex::new(()),
        not_empty: Condvar::new(),
    }))
}

/// Creates a bounded channel with the given capacity.
///
/// Capacity 0 (a rendezvous channel in the real crate) is rounded up
/// to 1: the workspace never uses rendezvous semantics.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel_with(Flavor::Bounded(BoundedQ {
        cap: cap.max(1),
        queue: Mutex::new(VecDeque::new()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    }))
}

// ------------------------------------------------------------ sender

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Blocks while a bounded channel is full; errors when every
    /// receiver has been dropped. Unbounded sends never block.
    pub fn send(&self, t: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(SendError(t));
        }
        match &self.shared.flavor {
            Flavor::Fast(f) => {
                f.push(t);
                f.wake();
                Ok(())
            }
            Flavor::Bounded(b) => {
                let mut q = b.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                        return Err(SendError(t));
                    }
                    if q.len() < b.cap {
                        break;
                    }
                    q = b.not_full.wait(q).unwrap_or_else(|e| e.into_inner());
                }
                q.push_back(t);
                drop(q);
                b.not_empty.notify_one();
                Ok(())
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn len(&self) -> usize {
        match &self.shared.flavor {
            Flavor::Fast(f) => f.queue_len(),
            Flavor::Bounded(b) => b.queue.lock().unwrap_or_else(|e| e.into_inner()).len(),
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Wake receivers blocked on an empty queue so they can
            // observe the disconnect.
            match &self.shared.flavor {
                Flavor::Fast(f) => {
                    let _g = f.park.lock().unwrap_or_else(|e| e.into_inner());
                    f.not_empty.notify_all();
                }
                Flavor::Bounded(b) => {
                    let _q = b.queue.lock().unwrap_or_else(|e| e.into_inner());
                    b.not_empty.notify_all();
                }
            }
        }
    }
}

// ---------------------------------------------------------- receiver

/// The receiving half of a channel. Cloneable.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until an item arrives; errors when the channel is empty
    /// and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.recv_deadline(None).map_err(|_| RecvError)
    }

    /// Blocks for at most `timeout`. A timeout too large to represent
    /// as a deadline (e.g. `Duration::MAX`) blocks like [`recv`],
    /// matching the real crate's saturating behaviour.
    ///
    /// [`recv`]: Receiver::recv
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        match Instant::now().checked_add(timeout) {
            Some(d) => self.recv_deadline(Some(d)),
            None => self
                .recv()
                .map_err(|RecvError| RecvTimeoutError::Disconnected),
        }
    }

    fn recv_deadline(&self, deadline: Option<Instant>) -> Result<T, RecvTimeoutError> {
        match &self.shared.flavor {
            Flavor::Fast(f) => {
                // Fast path: no locks at all while items are flowing.
                if let Some(t) = f.pop() {
                    return Ok(t);
                }
                loop {
                    // Park protocol: register as sleeper, then recheck
                    // (fence pairs with the sender's in `wake`), then
                    // wait. The recheck happens under the park mutex,
                    // so a notify can't slip between recheck and wait.
                    let mut g = f.park.lock().unwrap_or_else(|e| e.into_inner());
                    f.sleepers.fetch_add(1, Ordering::SeqCst);
                    fence(Ordering::SeqCst);
                    if let Some(t) = f.pop() {
                        f.sleepers.fetch_sub(1, Ordering::SeqCst);
                        return Ok(t);
                    }
                    if self.shared.disconnected_tx() {
                        f.sleepers.fetch_sub(1, Ordering::SeqCst);
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    let timed_out = match deadline {
                        None => {
                            g = f.not_empty.wait(g).unwrap_or_else(|e| e.into_inner());
                            false
                        }
                        Some(d) => {
                            let remaining = d.saturating_duration_since(Instant::now());
                            if remaining.is_zero() {
                                f.sleepers.fetch_sub(1, Ordering::SeqCst);
                                return Err(RecvTimeoutError::Timeout);
                            }
                            let (g2, res) = f
                                .not_empty
                                .wait_timeout(g, remaining)
                                .unwrap_or_else(|e| e.into_inner());
                            g = g2;
                            res.timed_out()
                        }
                    };
                    f.sleepers.fetch_sub(1, Ordering::SeqCst);
                    drop(g);
                    if let Some(t) = f.pop() {
                        return Ok(t);
                    }
                    if self.shared.disconnected_tx() {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    if timed_out {
                        return Err(RecvTimeoutError::Timeout);
                    }
                }
            }
            Flavor::Bounded(b) => {
                let mut q = b.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(t) = q.pop_front() {
                        drop(q);
                        b.not_full.notify_one();
                        return Ok(t);
                    }
                    if self.shared.disconnected_tx() {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    match deadline {
                        None => {
                            q = b.not_empty.wait(q).unwrap_or_else(|e| e.into_inner());
                        }
                        Some(d) => {
                            let remaining = d.saturating_duration_since(Instant::now());
                            if remaining.is_zero() {
                                return Err(RecvTimeoutError::Timeout);
                            }
                            let (g, res) = b
                                .not_empty
                                .wait_timeout(q, remaining)
                                .unwrap_or_else(|e| e.into_inner());
                            q = g;
                            if res.timed_out() && q.is_empty() {
                                return if self.shared.disconnected_tx() {
                                    Err(RecvTimeoutError::Disconnected)
                                } else {
                                    Err(RecvTimeoutError::Timeout)
                                };
                            }
                        }
                    }
                }
            }
        }
    }

    /// Never blocks.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        match &self.shared.flavor {
            Flavor::Fast(f) => {
                if let Some(t) = f.pop() {
                    return Ok(t);
                }
                if self.shared.disconnected_tx() {
                    // Disconnect raced a final send: look once more.
                    if let Some(t) = f.pop() {
                        return Ok(t);
                    }
                    Err(TryRecvError::Disconnected)
                } else {
                    Err(TryRecvError::Empty)
                }
            }
            Flavor::Bounded(b) => {
                let mut q = b.queue.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(t) = q.pop_front() {
                    drop(q);
                    b.not_full.notify_one();
                    return Ok(t);
                }
                if self.shared.disconnected_tx() {
                    Err(TryRecvError::Disconnected)
                } else {
                    Err(TryRecvError::Empty)
                }
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn len(&self) -> usize {
        match &self.shared.flavor {
            Flavor::Fast(f) => f.queue_len(),
            Flavor::Bounded(b) => b.queue.lock().unwrap_or_else(|e| e.into_inner()).len(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Wake senders blocked on a full bounded queue so they can
            // observe the disconnect (fast senders never block).
            if let Flavor::Bounded(b) = &self.shared.flavor {
                let _q = b.queue.lock().unwrap_or_else(|e| e.into_inner());
                b.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );

        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(7).unwrap();
        assert_eq!(rx2.recv(), Ok(7));
        assert_eq!(rx1.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn overflow_beyond_ring_capacity_stays_fifo() {
        // Way past RING_SLOTS with no consumer: the channel must
        // degrade to the overflow and still deliver in send order.
        let (tx, rx) = unbounded();
        let n = RING_SLOTS * 10;
        for i in 0..n {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), n);
        for i in 0..n {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn degrade_and_recover_cycles_stay_fifo() {
        let (tx, rx) = unbounded();
        let mut expect = 0usize;
        let mut next = 0usize;
        for _round in 0..5 {
            // Overfill (degrades), then drain half, refill, drain all.
            for _ in 0..RING_SLOTS + 50 {
                tx.send(next).unwrap();
                next += 1;
            }
            for _ in 0..100 {
                assert_eq!(rx.recv(), Ok(expect));
                expect += 1;
            }
            for _ in 0..20 {
                tx.send(next).unwrap();
                next += 1;
            }
            while expect < next {
                assert_eq!(rx.recv(), Ok(expect));
                expect += 1;
            }
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn single_producer_order_is_total_under_concurrent_drain() {
        // One producer, one consumer running concurrently: the
        // consumer must observe strictly increasing values even while
        // the channel bounces between ring and overflow.
        let (tx, rx) = unbounded();
        let n = 100_000usize;
        let prod = std::thread::spawn(move || {
            for i in 0..n {
                tx.send(i).unwrap();
            }
        });
        let mut last = None;
        for _ in 0..n {
            let v = rx.recv().unwrap();
            if let Some(l) = last {
                assert!(v > l, "FIFO violated: {v} after {l}");
            }
            last = Some(v);
        }
        prod.join().unwrap();
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn multi_producer_drains_everything_and_keeps_per_sender_order() {
        let (tx, rx) = unbounded::<(usize, usize)>();
        let producers = 4usize;
        let per = 50_000usize;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        tx.send((p, i)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut next = vec![0usize; producers];
        let mut got = 0usize;
        while let Ok((p, i)) = rx.recv() {
            assert_eq!(i, next[p], "per-sender FIFO violated for sender {p}");
            next[p] += 1;
            got += 1;
        }
        assert_eq!(got, producers * per);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn sleeping_receiver_is_woken_by_send() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        tx.send(42u32).unwrap();
        assert_eq!(t.join().unwrap(), Ok(42));
    }

    #[test]
    fn sleeping_receiver_is_woken_by_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn concurrent_receivers_split_the_stream() {
        let (tx, rx) = unbounded::<usize>();
        let n = 40_000usize;
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    while let Ok(v) = rx.recv() {
                        mine.push(v);
                    }
                    mine
                })
            })
            .collect();
        drop(rx);
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn len_tracks_ring_and_overflow() {
        let (tx, rx) = unbounded::<u8>();
        assert!(tx.is_empty() && rx.is_empty());
        for _ in 0..RING_SLOTS + 10 {
            tx.send(0).unwrap();
        }
        assert_eq!(rx.len(), RING_SLOTS + 10);
        while rx.try_recv().is_ok() {}
        assert!(rx.is_empty());
    }
}
