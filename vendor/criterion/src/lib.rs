//! Offline shim for the subset of `criterion` used by the `nowmp`
//! benches: `Criterion::bench_function`, `benchmark_group`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up to pick an
//! iteration count targeting ~`NOWMP_BENCH_MS` (default 50) ms of
//! runtime, then one timed batch, reporting mean ns/iter. No
//! statistics, plots, or HTML reports — enough to spot order-of-
//! magnitude regressions and to keep the bench targets compiling and
//! runnable in CI (`cargo bench --no-run` + smoke runs).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives one benchmark's iterations.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, choosing an iteration count from a short warm-up.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until ~5ms or 50 iterations to estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(5) && warm_iters < 50 {
            black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        let budget_ms: f64 = std::env::var("NOWMP_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50.0);
        let target = (budget_ms * 1_000_000.0 / est.max(1.0)) as u64;
        let iters = target.clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.iters = iters;
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }
}

fn run_bench(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        ns_per_iter: 0.0,
        iters: 0,
    };
    f(&mut b);
    println!(
        "{name:<40} {:>14.1} ns/iter  ({} iters)",
        b.ns_per_iter, b.iters
    );
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            prefix: name.to_string(),
        }
    }
}

/// A named group of benchmarks; names are prefixed `group/bench`.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.prefix, name), &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, trivial);

    // One test, not two: `set_var` racing another test thread's
    // `env::var` (inside `Bencher::iter`) is a libc getenv/setenv
    // data race under the default parallel test runner.
    #[test]
    fn bench_machinery_runs() {
        std::env::set_var("NOWMP_BENCH_MS", "1");
        let mut c = Criterion::default();
        trivial(&mut c);
        let mut g = c.benchmark_group("grp");
        g.bench_function("x", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
        // The criterion_group!/criterion_main! expansion path.
        benches();
    }
}
