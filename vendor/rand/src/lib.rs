//! Offline shim for the subset of the `rand` crate used by the
//! `nowmp` workspace: a seedable deterministic generator (`StdRng`)
//! with uniform range sampling.
//!
//! The generator is splitmix64 — statistically fine for test-input
//! and workload generation, which is all the workspace uses it for.
//! Note the streams differ from the real `rand::StdRng` (ChaCha12);
//! seeds here reproduce *within* this workspace, not across crates.

/// Types that can construct themselves from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a half-open range, implemented for the
/// primitive types the workspace draws.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// The raw source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Extension methods available on every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `lo..hi` (half-open). Panics if empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniformly random `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < 2^-64 for the spans used here.
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with an empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = r.gen_range(-0.3..0.3);
            assert!((-0.3..0.3).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn values_spread_across_the_range() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
