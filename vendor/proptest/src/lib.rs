//! Offline shim for the subset of `proptest` used by the `nowmp`
//! workspace.
//!
//! Provides the `proptest!` macro, `prop_assert*`, `any::<T>()`,
//! range/tuple/`Just`/`prop_oneof!` strategies, `collection::vec`,
//! `option::of`, and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case reports the generated inputs via
//!   the panic message (all strategies generate `Debug` values through
//!   plain `assert!`/`assert_eq!`), but is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from
//!   its own name, so runs are reproducible in CI; set
//!   `PROPTEST_SEED` to perturb the whole suite.

pub use rand as __rand;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Matches upstream proptest's default case count.
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use super::*;

    /// A generator of random values. Object-safe; no shrinking.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    impl<T: SampleUniform + Copy> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    /// A `&str` strategy is a regex in real proptest. The workspace
    /// only uses `".*"` (any string); generate arbitrary short UTF-8.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let len = rng.gen_range(0usize..40);
            (0..len)
                .map(|_| {
                    // Bias towards ASCII, sprinkle in wider code points
                    // to exercise UTF-8 handling.
                    if rng.gen_range(0u32..4) > 0 {
                        rng.gen_range(0x20u32..0x7F) as u8 as char
                    } else {
                        char::from_u32(rng.gen_range(0u32..0xD800)).unwrap_or('\u{FFFD}')
                    }
                })
                .collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::*;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    /// Marker strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The `any::<T>()` strategy: any representable value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> Self {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            use rand::RngCore;
            // Any bit pattern: exercises infinities, NaNs, subnormals.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            use rand::RngCore;
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            char::from_u32(rng.gen_range(0u32..0xD800)).unwrap_or('\u{FFFD}')
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy yielding `None` or `Some(inner)`.
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Everything a `proptest!` call site needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Derives a stable per-test seed from the test name (FNV-1a), xored
/// with `PROPTEST_SEED` when set so the whole suite can be perturbed.
#[doc(hidden)]
pub fn __seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            h ^= v;
        }
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(Box::new($strat)),+])
    };
}

/// The `proptest!` block: runs each contained `#[test]` fn for
/// `cases` random inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::__seed_for(stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -2.0..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_and_just(w in crate::collection::vec(prop_oneof![Just(0u64), any::<u64>()], 0..50)) {
            let _ = w;
        }

        #[test]
        fn options_mix(o in crate::option::of(any::<u32>()), t in (any::<u16>(), any::<u32>())) {
            let _ = (o, t);
        }

        #[test]
        fn strings_generate(s in ".*") {
            prop_assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::__seed_for("abc"), crate::__seed_for("abc"));
        assert_ne!(crate::__seed_for("abc"), crate::__seed_for("abd"));
    }
}
